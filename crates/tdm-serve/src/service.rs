//! The multi-tenant mining service: request/response types, the error
//! taxonomy, and [`MiningService`] itself.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use tdm_baselines::{ActiveSetBackend, MapReduceBackend, SerialScanBackend, ShardedScanBackend};
use tdm_core::miner::SequentialBackend;
use tdm_core::session::{BackendError, CancelToken, Executor, MineError};
use tdm_core::stats::MiningResult;
use tdm_core::{EventDb, MinerConfig};
use tdm_mapreduce::pool::{default_workers, Pool, Priority};

use crate::admission::{AdmissionQueue, DEFAULT_AGING_LIMIT};
use crate::cache::{
    group_fingerprint, session_key, CacheStats, CachedCoSession, CachedSession, CoSessionCache,
    SessionCache, SessionKey,
};
use crate::comine::{Batcher, CoMiningStats, Deliveries, Entry};

/// Which counting executor serves a request. All choices produce bit-identical
/// counts; they differ only in how the scan is decomposed over the shared
/// pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendChoice {
    /// Database-sharded parallel scan over the shared pool (the paper's
    /// block-level shape; fastest at low levels). The default.
    #[default]
    Sharded,
    /// Candidate-sharded parallel scan over the shared pool (the paper's
    /// thread-level shape; catches up at high levels).
    MapReduce,
    /// Single-pass active-set scan on the calling thread (no pool jobs).
    ActiveSet,
    /// The built-in sequential executor of `tdm-core` (no pool jobs).
    Sequential,
    /// One full scan per episode on the calling thread — the GMiner-class
    /// baseline; useful for calibration, quadratically slow on big sets.
    SerialScan,
    /// The persistent simulated-GPU serving pipeline
    /// ([`tdm_gpu::GpuPipelineBackend`]): per-level CPU-vs-GPU dispatch, the
    /// stream uploaded once and kept device-resident, fused batches modeled
    /// as K-tenant union launches.
    GpuPipeline,
}

impl BackendChoice {
    /// True for the device-pipeline class (every other choice is a CPU scan).
    pub fn is_gpu(&self) -> bool {
        matches!(self, BackendChoice::GpuPipeline)
    }

    /// Declaration-order rank — the deterministic tie-break of
    /// [`vote_backend`], so a CPU-vs-GPU class split among joiners resolves
    /// the same way regardless of join order.
    fn rank(&self) -> u8 {
        match self {
            BackendChoice::Sharded => 0,
            BackendChoice::MapReduce => 1,
            BackendChoice::ActiveSet => 2,
            BackendChoice::Sequential => 3,
            BackendChoice::SerialScan => 4,
            BackendChoice::GpuPipeline => 5,
        }
    }

    fn instantiate(&self, tenants: usize) -> Box<dyn Executor> {
        match self {
            BackendChoice::Sharded => Box::new(ShardedScanBackend::auto()),
            BackendChoice::MapReduce => Box::new(MapReduceBackend::auto()),
            BackendChoice::ActiveSet => Box::new(ActiveSetBackend::default()),
            BackendChoice::Sequential => Box::new(SequentialBackend::default()),
            BackendChoice::SerialScan => Box::new(SerialScanBackend),
            BackendChoice::GpuPipeline => {
                Box::new(
                    tdm_gpu::GpuPipelineBackend::with_defaults(
                        gpu_sim::DeviceConfig::geforce_gtx_280(),
                    )
                    .tenants(tenants as u32),
                )
            }
        }
    }
}

/// One client request: a shared database handle, the mining configuration,
/// the backend choice, and a scheduling priority.
///
/// Reuse one `MiningRequest` value (or clones of it) across submissions: the
/// database content hash of the session key is computed once per request
/// value and memoized, so steady-state resubmission costs no re-hash of the
/// stream — and same-handle cache verification is pointer equality.
#[derive(Debug, Clone)]
pub struct MiningRequest {
    db: Arc<EventDb>,
    config: MinerConfig,
    backend: BackendChoice,
    priority: Priority,
    /// Wall-clock budget from submission: past it, the level loop stops at
    /// the next level boundary with [`ServeError::Cancelled`].
    deadline: Option<Duration>,
    /// Caller-held cancellation handle (disconnect watchdogs, client aborts);
    /// combined with `deadline` into one token at submission.
    cancel: Option<CancelToken>,
    /// Memoized [`SessionKey`] (hash of the full db content + config);
    /// computable once because the fields above are immutable after build.
    /// `OnceLock`'s `Clone` carries a computed key over to clones.
    key: std::sync::OnceLock<SessionKey>,
}

impl MiningRequest {
    /// A request with the default backend (database-sharded) and normal
    /// priority.
    pub fn new(db: Arc<EventDb>, config: MinerConfig) -> Self {
        MiningRequest {
            db,
            config,
            backend: BackendChoice::default(),
            priority: Priority::Normal,
            deadline: None,
            cancel: None,
            key: std::sync::OnceLock::new(),
        }
    }

    /// Sets the backend choice.
    pub fn backend(mut self, backend: BackendChoice) -> Self {
        self.backend = backend;
        self
    }

    /// Sets the admission priority: [`Priority::High`] requests overtake
    /// waiting normal ones at the admission gate, and their counting scans
    /// are submitted on the shared pool's high-priority job lane (overtaking
    /// queued scans of already-admitted normal requests).
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Sets a wall-clock deadline, measured from submission: when it passes,
    /// the mining loop stops **at the next level boundary** (the level loop
    /// checks a [`CancelToken`] before every level's compile+scan), the
    /// in-flight slot is released, and the caller gets
    /// [`ServeError::Cancelled`] naming the level that never ran. A deadline
    /// expiring while the request is still queued at the admission gate
    /// cancels it on the level-1 check, immediately after admission.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Attaches a caller-held [`CancelToken`]: firing it (from a disconnect
    /// handler, a watchdog, another thread) cancels the request at the next
    /// level boundary exactly like an expired [`deadline`](Self::deadline).
    /// Both may be set; whichever fires first cancels.
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// The database this request mines.
    pub fn db(&self) -> &Arc<EventDb> {
        &self.db
    }

    /// The mining configuration.
    pub fn config(&self) -> &MinerConfig {
        &self.config
    }

    /// The [`SessionKey`] this request is served under (computed on first
    /// call, memoized for the request's lifetime).
    pub fn key(&self) -> SessionKey {
        *self.key.get_or_init(|| session_key(&self.db, &self.config))
    }
}

/// Whether a request's session came from the cache, was planned fresh, or
/// was fused into a cross-request co-mining batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// A parked session was verified and reused: no session planning (no
    /// stream snapshot, shard-bound computation, or buffer allocation);
    /// levels recompile in place into the warm buffers.
    Hit,
    /// No (verifiable) entry existed; the request planned a fresh session.
    Miss,
    /// The request was served from a **fused** cross-request scan (it led or
    /// joined a co-mining batch over its database). The per-(db, config)
    /// session cache was not consulted — the batch's union scan has its own
    /// compiled buffers, so parked sessions stay untouched.
    CoMined,
}

/// Per-request measurements returned alongside the mining result.
#[derive(Debug, Clone, Copy)]
pub struct ResponseStats {
    /// Cache hit or miss for this request's session.
    pub cache: CacheOutcome,
    /// Time spent waiting, not mining: the admission gate, plus — when
    /// co-mining is enabled — the batch-formation window (a leader holding
    /// it open, or a joiner's wait before the fused scan started).
    pub queue_wait: Duration,
    /// Time spent planning + mining (the level loop), excluding queueing.
    /// For a fused request this is the batch's mining wall time — the shared
    /// scans that produced this member's counts.
    pub mine_time: Duration,
    /// The session key the request was served under.
    pub key: SessionKey,
}

/// A completed request: the full mining result plus serving measurements.
#[derive(Debug, Clone)]
pub struct MiningResponse {
    /// The level-by-level mining result (identical to a serial
    /// `Miner::mine` run of the same request).
    pub result: MiningResult,
    /// Serving measurements (cache outcome, queue wait, mine time).
    pub stats: ResponseStats,
}

/// Why a request failed. The taxonomy separates *load* problems (retryable
/// after backoff) from *execution* problems (a bug or malformed backend).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The waiting room was full; retry after backoff. Carries the observed
    /// queue depth and the configured bound.
    Overloaded {
        /// Requests already waiting when this one was rejected.
        pending: usize,
        /// The configured `max_pending` bound.
        limit: usize,
    },
    /// The request's deadline passed (or its [`CancelToken`] fired) and the
    /// level loop stopped at a level boundary: `level` is the first level
    /// that never ran. Completed levels were discarded; the in-flight slot
    /// was released the moment the loop returned.
    Cancelled {
        /// The first level whose compile+scan was skipped.
        level: usize,
    },
    /// The counting backend failed inside the mining loop (level, backend
    /// name, and cause inside).
    Mine(MineError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded { pending, limit } => {
                write!(
                    f,
                    "service overloaded: {pending} requests pending (limit {limit})"
                )
            }
            ServeError::Cancelled { level } => {
                write!(
                    f,
                    "request cancelled before level {level} (deadline passed)"
                )
            }
            ServeError::Mine(e) => write!(f, "mining failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Mine(e) => Some(e),
            ServeError::Overloaded { .. } | ServeError::Cancelled { .. } => None,
        }
    }
}

/// Maps a level-loop failure onto the serving taxonomy: a
/// [`BackendError::Cancelled`] becomes the typed [`ServeError::Cancelled`]
/// (retryable by the client's own choice); everything else stays a
/// [`ServeError::Mine`] execution failure.
fn classify_mine_error(e: MineError) -> ServeError {
    if e.source == BackendError::Cancelled {
        ServeError::Cancelled { level: e.level }
    } else {
        ServeError::Mine(e)
    }
}

/// Service sizing knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Worker threads in the one shared pool (0 = the machine's available
    /// parallelism).
    pub workers: usize,
    /// How many requests may mine concurrently (0 = one per pool worker).
    /// More than this wait at the admission gate in fair FIFO order.
    pub max_in_flight: usize,
    /// How many requests may wait at the gate before new arrivals are
    /// rejected with [`ServeError::Overloaded`] (0 = unbounded).
    pub max_pending: usize,
    /// Parked sessions kept in the LRU cache (0 disables caching).
    pub cache_capacity: usize,
    /// How long a co-mining batch leader holds its formation window open for
    /// same-database joiners. `Duration::ZERO` (the default) disables
    /// cross-request co-mining: every request mines solo. Batches form
    /// **before** admission: a request enters the batch board first and only
    /// then (as a leader or a solo) takes an in-flight slot, so joiners never
    /// hold slots and fusion works even at `max_in_flight = 1` — a saturated
    /// gate is exactly when same-database requests pile up behind the queued
    /// leader and fuse in the waiting room.
    pub comine_window: Duration,
    /// Maximum requests fused into one co-mining batch, leader included
    /// (0 = unbounded — the window alone closes batches). When a batch fills,
    /// the leader stops collecting immediately, so saturated services don't
    /// pay the window latency.
    pub comine_max_batch: usize,
    /// Admission aging bound: a waiting Normal request is admitted after at
    /// most this many consecutive High admissions (0 disables aging — strict
    /// priority, which a continuous High stream can starve).
    pub aging_limit: usize,
    /// How long a co-mining joiner blocks on its batch leader before giving
    /// up with a typed error instead of wedging a service worker forever.
    /// Defaults to 120 s — generous for interactive batches; streaming
    /// re-mines ([`crate::ingest`]) want deadlines closer to their flush
    /// cadence.
    pub waiter_timeout: Duration,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 0,
            max_in_flight: 0,
            max_pending: 0,
            cache_capacity: 32,
            comine_window: Duration::ZERO,
            comine_max_batch: 0,
            aging_limit: DEFAULT_AGING_LIMIT,
            waiter_timeout: crate::comine::DEFAULT_WAITER_TIMEOUT,
        }
    }
}

/// Aggregate service counters since start (a [`MiningService::stats`]
/// snapshot; the cache counters live in the session cache itself).
#[derive(Debug, Clone, Copy, Default)]
pub struct ServiceStats {
    /// Requests that completed successfully.
    pub completed: u64,
    /// Requests that failed in the mining loop.
    pub failed: u64,
    /// Requests rejected at the admission gate.
    pub rejected: u64,
    /// Requests cancelled at a level boundary (deadline passed or a
    /// [`CancelToken`] fired) — counted separately from `failed`: the
    /// backend was healthy, the client just stopped waiting.
    pub cancelled: u64,
    /// Session-cache counters (hits, misses, evictions, collisions).
    pub cache: CacheStats,
    /// Co-session-cache counters: parked `CoSession`s keyed by (db hash,
    /// sorted config-set fingerprint), reused across repeated fused batches.
    pub co_cache: CacheStats,
    /// Cross-request co-mining counters (batches, fused requests, solo
    /// fallbacks, waiting-room joins, backend-vote overrides).
    pub comining: CoMiningStats,
}

/// The request counters the service actually stores (the cache keeps its own
/// counters; [`MiningService::stats`] joins the two into a [`ServiceStats`]).
#[derive(Debug, Clone, Copy, Default)]
struct RequestCounters {
    completed: u64,
    failed: u64,
    rejected: u64,
    cancelled: u64,
    comining: CoMiningStats,
}

/// A multi-tenant mining service: many concurrent clients, one shared worker
/// pool, an LRU session cache, and fair admission.
///
/// Clients call [`MiningService::submit`] from their own threads; the call
/// blocks through admission and the mining loop and returns the full result.
/// All concurrent requests multiplex their counting scans over the **single**
/// machine-sized [`Pool`] owned by the service — no per-request thread
/// spawning anywhere — and repeated (database, config) requests reuse parked
/// sessions from the cache: no stream snapshot, shard-bound computation, or
/// buffer allocation on a hit (levels recompile in place into the parked
/// session's warm buffers, at a stable address).
///
/// ```
/// use std::sync::Arc;
/// use tdm_core::{Alphabet, EventDb, MinerConfig};
/// use tdm_serve::{MiningRequest, MiningService, ServiceConfig};
///
/// let service = MiningService::new(ServiceConfig { workers: 2, ..Default::default() });
/// let db = Arc::new(EventDb::from_str_symbols(&Alphabet::latin26(), &"ABC".repeat(50)).unwrap());
/// let request = MiningRequest::new(db, MinerConfig { alpha: 0.1, ..Default::default() });
///
/// let first = service.submit(&request).unwrap();
/// let second = service.submit(&request).unwrap(); // session-cache hit
/// assert_eq!(first.result, second.result);
/// assert!(first.result.total_frequent() > 0);
/// assert_eq!(service.stats().cache.hits, 1);
/// ```
pub struct MiningService {
    pool: Arc<Pool>,
    admission: AdmissionQueue,
    cache: Mutex<SessionCache>,
    co_cache: Mutex<CoSessionCache>,
    batcher: Batcher,
    waiter_timeout: Duration,
    counters: Mutex<RequestCounters>,
}

impl std::fmt::Debug for MiningService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MiningService")
            .field("pool_workers", &self.pool.workers())
            .field("admission", &self.admission)
            .finish()
    }
}

impl MiningService {
    /// Builds a service: spawns the shared pool and sizes the admission gate
    /// and cache per `config`.
    pub fn new(config: ServiceConfig) -> Self {
        let workers = if config.workers == 0 {
            default_workers()
        } else {
            config.workers
        };
        let max_in_flight = if config.max_in_flight == 0 {
            workers
        } else {
            config.max_in_flight
        };
        MiningService {
            pool: Arc::new(Pool::with_workers(workers)),
            admission: AdmissionQueue::with_aging(
                max_in_flight,
                config.max_pending,
                config.aging_limit,
            ),
            cache: Mutex::new(SessionCache::new(config.cache_capacity)),
            co_cache: Mutex::new(CoSessionCache::new(config.cache_capacity)),
            batcher: Batcher::new(config.comine_window, config.comine_max_batch),
            waiter_timeout: config.waiter_timeout,
            counters: Mutex::new(RequestCounters::default()),
        }
    }

    /// A service with default sizing (machine-sized pool, one in-flight
    /// request per worker, 32 cached sessions).
    pub fn with_defaults() -> Self {
        MiningService::new(ServiceConfig::default())
    }

    /// The shared worker pool (e.g. to build coordinated sessions outside the
    /// service).
    pub fn pool(&self) -> &Arc<Pool> {
        &self.pool
    }

    /// Serves one request with its configured [`BackendChoice`]; blocks
    /// through admission and the mining loop.
    ///
    /// When this request's batch fuses with others submitted this way, the
    /// members **vote** on the executor: the most-requested
    /// [`BackendChoice`] runs the fused scans (the leader breaks ties), so a
    /// majority asking for, say, [`BackendChoice::MapReduce`] is not silently
    /// downgraded to whatever the leader happened to pick.
    ///
    /// # Errors
    /// [`ServeError::Overloaded`] when the waiting room is full,
    /// [`ServeError::Mine`] when the backend fails.
    pub fn submit(&self, request: &MiningRequest) -> Result<MiningResponse, ServeError> {
        let mut backend = request.backend.instantiate(1);
        self.submit_inner(request, backend.as_mut(), Some(request.backend))
    }

    /// Serves one request with a caller-supplied executor (any
    /// [`Executor`] — custom kernels, instrumented spies, simulated GPUs).
    /// The request's `backend` field is ignored, and the request abstains
    /// from any batch backend vote: if it leads a fused batch, the supplied
    /// executor runs the fused scans unconditionally.
    ///
    /// With a co-mining window configured ([`ServiceConfig::comine_window`]),
    /// the request may be **fused** with concurrent same-database requests
    /// into one shared union scan. Fusion happens *before* admission: the
    /// first such request becomes the batch leader (taking one in-flight slot
    /// for the whole batch), later ones join — whether the leader is still
    /// queued at the gate or already collecting — and receive their
    /// demultiplexed, still bit-identical results without ever holding a
    /// slot.
    ///
    /// # Errors
    /// Same taxonomy as [`MiningService::submit`]. A joiner whose leader is
    /// rejected at the gate shares that [`ServeError::Overloaded`].
    pub fn submit_with(
        &self,
        request: &MiningRequest,
        executor: &mut dyn Executor,
    ) -> Result<MiningResponse, ServeError> {
        self.submit_inner(request, executor, None)
    }

    /// The one serving path. `vote` is `Some` only for [`submit`]-style
    /// requests whose declared [`BackendChoice`] may participate in a batch
    /// backend vote.
    ///
    /// [`submit`]: MiningService::submit
    fn submit_inner(
        &self,
        request: &MiningRequest,
        executor: &mut dyn Executor,
        vote: Option<BackendChoice>,
    ) -> Result<MiningResponse, ServeError> {
        let arrived = Instant::now();
        let key = request.key();
        // One effective token per submission: the caller's handle (if any)
        // tightened by the request deadline (if any), measured from *arrival*
        // — time queued at the gate spends the budget too.
        let cancel = match (&request.cancel, request.deadline) {
            (Some(t), Some(d)) => Some(t.deadline_within(d)),
            (Some(t), None) => Some(t.clone()),
            (None, Some(d)) => Some(CancelToken::new().deadline_within(d)),
            (None, None) => None,
        };

        // Enter the batch board *before* the admission gate: a joiner rides
        // its leader's slot and must not consume one itself — that is what
        // lets K same-database requests fuse behind a saturated gate.
        let entry = self.batcher.enter(
            key.db_hash,
            &request.db,
            request.config,
            request.priority,
            vote,
        );
        if let Entry::Joined(waiter) = entry {
            let parked = Instant::now();
            let (outcome_result, fused_mine_time) = waiter.wait_for(self.waiter_timeout);
            // Waiting on the leader minus the fused scan itself is queueing
            // (gate wait + residual window + scheduling).
            let queue_wait = parked.elapsed().saturating_sub(fused_mine_time);
            return self.finish(
                outcome_result,
                CacheOutcome::CoMined,
                queue_wait,
                fused_mine_time,
                key,
            );
        }

        let permit = match self.admission.acquire(request.priority) {
            Ok(p) => p,
            Err(over) => {
                // A rejected leader shares the rejection with everyone who
                // joined while it queued, instead of stranding them.
                if let Entry::Leader(token) = entry {
                    let joiners = self.batcher.abort(token);
                    self.counters
                        .lock()
                        .expect("service counters")
                        .comining
                        .waiting_room_joins += joiners.waiting_room_joins();
                    joiners.deliver_rejected(over.pending, over.limit);
                }
                self.counters.lock().expect("service counters").rejected += 1;
                return Err(ServeError::Overloaded {
                    pending: over.pending,
                    limit: over.limit,
                });
            }
        };
        let gate_wait = arrived.elapsed();

        // Each arm separates *waiting* (batch formation) from *mining*, so
        // queue_wait/mine_time keep their meaning with co-mining enabled.
        let (outcome_result, outcome, batch_wait, mine_time) = match entry {
            Entry::Joined(_) => unreachable!("joiners returned above"),
            Entry::Solo => {
                let mining = Instant::now();
                let (result, outcome) = self.mine_solo(request, executor, key, cancel.as_ref());
                (
                    result.map_err(ServeError::Mine),
                    outcome,
                    Duration::ZERO,
                    mining.elapsed(),
                )
            }
            Entry::Leader(token) => {
                let window = Instant::now();
                let joiners = self.batcher.collect(token);
                let window_wait = window.elapsed();
                let mining = Instant::now();
                if joiners.is_empty() {
                    self.counters
                        .lock()
                        .expect("service counters")
                        .comining
                        .solo_fallbacks += 1;
                    let (result, outcome) = self.mine_solo(request, executor, key, cancel.as_ref());
                    (
                        result.map_err(ServeError::Mine),
                        outcome,
                        window_wait,
                        mining.elapsed(),
                    )
                } else {
                    self.counters
                        .lock()
                        .expect("service counters")
                        .comining
                        .waiting_room_joins += joiners.waiting_room_joins();
                    let result = self.mine_fused(request, executor, joiners, vote, cancel.as_ref());
                    (
                        result.map_err(ServeError::Mine),
                        CacheOutcome::CoMined,
                        window_wait,
                        mining.elapsed(),
                    )
                }
            }
        };
        let queue_wait = gate_wait + batch_wait;
        drop(permit);
        self.finish(outcome_result, outcome, queue_wait, mine_time, key)
    }

    /// Books the request's terminal counter and assembles the response.
    fn finish(
        &self,
        outcome_result: Result<MiningResult, ServeError>,
        outcome: CacheOutcome,
        queue_wait: Duration,
        mine_time: Duration,
        key: SessionKey,
    ) -> Result<MiningResponse, ServeError> {
        // Normalize cancellations on every path through here — solo, leader,
        // and joiner-delivered batch errors alike ([`classify_mine_error`]).
        let outcome_result = outcome_result.map_err(|e| match e {
            ServeError::Mine(m) => classify_mine_error(m),
            other => other,
        });
        let mut counters = self.counters.lock().expect("service counters");
        match outcome_result {
            Ok(result) => {
                counters.completed += 1;
                drop(counters);
                Ok(MiningResponse {
                    result,
                    stats: ResponseStats {
                        cache: outcome,
                        queue_wait,
                        mine_time,
                        key,
                    },
                })
            }
            Err(e) => {
                match &e {
                    ServeError::Overloaded { .. } => counters.rejected += 1,
                    ServeError::Cancelled { .. } => counters.cancelled += 1,
                    ServeError::Mine(_) => counters.failed += 1,
                }
                drop(counters);
                Err(e)
            }
        }
    }

    /// The solo path: take (or plan) the per-(db, config) cached session and
    /// run the request's own mining loop on it.
    fn mine_solo(
        &self,
        request: &MiningRequest,
        executor: &mut dyn Executor,
        key: SessionKey,
        token: Option<&CancelToken>,
    ) -> (Result<MiningResult, MineError>, CacheOutcome) {
        let cached =
            self.cache
                .lock()
                .expect("session cache")
                .take(key, &request.db, &request.config);
        let (mut entry, outcome) = match cached {
            Some(entry) => (entry, CacheOutcome::Hit),
            None => (
                CachedSession::build(
                    Arc::clone(&request.db),
                    request.config,
                    Arc::clone(&self.pool),
                ),
                CacheOutcome::Miss,
            ),
        };

        // The request's class rides through to the pool's job lanes: the
        // parallel executors submit this session's scans at this priority.
        entry.session_mut().set_job_priority(request.priority);
        // Always (re)set the token — Some or None — so a parked session never
        // carries a stale deadline into the next request.
        entry.session_mut().set_cancel_token(token.cloned());
        let outcome_result = entry.session_mut().mine(executor);

        // Park the session again even after a backend error: the plan state
        // stays consistent, and the next (possibly healthy) request reuses it.
        self.cache.lock().expect("session cache").put(key, entry);
        (outcome_result, outcome)
    }

    /// The fused path (batch leader): take (or plan) a cached
    /// [`tdm_core::session::CoSession`] over the leader's config plus every
    /// joiner's, run the single union scan per level, route the demultiplexed
    /// results to the joiners, and keep the leader's own.
    ///
    /// Sessions are parked in a dedicated co-session cache keyed by (db hash,
    /// **sorted** config-set fingerprint): a recurring bundle of queries hits
    /// the cache even when its members arrive in a different order (the
    /// session's member permutation routes results back), and its compiled
    /// union buffers stay warm at a stable address across batches. The
    /// per-(db, config) solo cache is never consulted, so parked solo
    /// sessions stay untouched.
    ///
    /// When the leader declared a backend `vote` ([`MiningService::submit`]),
    /// the batch votes: the most-requested [`BackendChoice`] among voting
    /// members runs the fused scans (leader breaks ties). Abstaining members
    /// (caller-supplied executors) don't outvote anyone, and an abstaining
    /// *leader* disables the vote entirely — `executor` runs as given.
    fn mine_fused(
        &self,
        request: &MiningRequest,
        executor: &mut dyn Executor,
        mut joiners: Deliveries,
        vote: Option<BackendChoice>,
        token: Option<&CancelToken>,
    ) -> Result<MiningResult, MineError> {
        // Batch order: leader first, then joiners in join (= delivery) order.
        let mut batch_configs = Vec::with_capacity(1 + joiners.len());
        batch_configs.push(request.config);
        batch_configs.extend(joiners.configs());

        let mut voted: Option<Box<dyn Executor>> = None;
        if let Some(leader_choice) = vote {
            let winner = vote_backend(leader_choice, joiners.backends().flatten());
            if winner != leader_choice {
                // Counted exactly when the *leader's* declared backend lost
                // the vote — independent of how the winner is instantiated
                // below (a fused batch re-instantiates even an unchanged
                // winner, to size it for the batch).
                self.counters
                    .lock()
                    .expect("service counters")
                    .comining
                    .backend_votes_overridden += 1;
            }
            // A fused batch's executor is sized for its member count: the GPU
            // pipeline models a (1 + joiners)-tenant union launch, the CPU
            // scans ignore the hint. Solo batches keep the leader's own
            // executor unless outvoted.
            let tenants = 1 + joiners.len();
            if winner != leader_choice || tenants > 1 {
                voted = Some(winner.instantiate(tenants));
            }
        }
        let executor: &mut dyn Executor = match voted.as_mut() {
            Some(b) => b.as_mut(),
            None => executor,
        };

        let co_key = SessionKey {
            db_hash: request.key().db_hash,
            config_fingerprint: group_fingerprint(&batch_configs),
        };
        let cached = self.co_cache.lock().expect("co-session cache").take(
            co_key,
            &request.db,
            &batch_configs,
        );
        let (mut entry, perm) = match cached {
            Some((entry, perm)) => (entry, perm),
            None => (
                CachedCoSession::build(
                    Arc::clone(&request.db),
                    &batch_configs,
                    Arc::clone(&self.pool),
                ),
                // A fresh session's members are already in batch order.
                (0..batch_configs.len()).collect(),
            ),
        };
        entry
            .session_mut()
            .set_job_priority(joiners.max_priority(request.priority));
        // The *leader's* token governs the whole batch: joiners wait with
        // their own timeout and hold no slot, so only the scanning request
        // can usefully cancel the fused level loop.
        entry.session_mut().set_cancel_token(token.cloned());
        let mining = Instant::now();
        let outcome = entry.session_mut().co_mine(executor);
        let mine_time = mining.elapsed();
        // Park the co-session again even after a backend error: the plan
        // state stays consistent, and the next batch of this bundle reuses it.
        self.co_cache
            .lock()
            .expect("co-session cache")
            .put(co_key, entry);
        {
            // Counted after the scan so the stats can't claim requests were
            // served from a batch that then failed.
            let mut counters = self.counters.lock().expect("service counters");
            counters.comining.batches += 1;
            if outcome.is_ok() {
                counters.comining.fused_requests += 1 + joiners.len() as u64;
            }
        }
        match outcome {
            Ok(results) => {
                // `results` is in the session's member order; `perm` routes it
                // back to batch (arrival) order.
                let mut slots: Vec<Option<MiningResult>> = results.into_iter().map(Some).collect();
                let mut ordered: Vec<MiningResult> = perm
                    .iter()
                    .map(|&j| {
                        slots[j]
                            .take()
                            .expect("permutation visits each member once")
                    })
                    .collect();
                let leader = ordered.remove(0);
                joiners.deliver_ok(ordered, mine_time);
                Ok(leader)
            }
            Err(e) => {
                joiners.deliver_err(&e, mine_time);
                Err(e)
            }
        }
    }

    /// Aggregate counters since service start.
    pub fn stats(&self) -> ServiceStats {
        let counters = *self.counters.lock().expect("service counters");
        ServiceStats {
            completed: counters.completed,
            failed: counters.failed,
            rejected: counters.rejected,
            cancelled: counters.cancelled,
            cache: self.cache.lock().expect("session cache").stats(),
            co_cache: self.co_cache.lock().expect("co-session cache").stats(),
            comining: counters.comining,
        }
    }

    /// Co-mining batches currently open on the batch board — leaders queued
    /// at the gate or holding their formation window (0 when co-mining is
    /// disabled or idle).
    pub fn open_batches(&self) -> usize {
        self.batcher.open_batches()
    }

    /// Joiners currently parked on the batch board, riding a leader's slot
    /// (they hold no admission slot of their own).
    pub fn waiting_joiners(&self) -> usize {
        self.batcher.waiting_joiners()
    }

    /// Parked solo sessions currently in the cache.
    pub fn cached_sessions(&self) -> usize {
        self.cache.lock().expect("session cache").len()
    }

    /// Parked co-mining sessions currently in the co-session cache.
    pub fn cached_co_sessions(&self) -> usize {
        self.co_cache.lock().expect("co-session cache").len()
    }

    /// Requests currently waiting at the admission gate.
    pub fn pending(&self) -> usize {
        self.admission.pending()
    }

    /// Requests currently mining.
    pub fn in_flight(&self) -> usize {
        self.admission.in_flight()
    }
}

/// Majority vote over a batch's declared [`BackendChoice`]s: the leader's
/// choice starts with one vote, every voting joiner adds one, and the
/// most-requested choice wins. The leader breaks ties against itself (a
/// challenger must be *strictly* more requested to displace it); ties *among*
/// challengers — including CPU-vs-GPU class splits, where the stakes are a
/// whole backend class — resolve by the enum's declaration-order rank, so the
/// winner never depends on which joiner happened to reach the batch board
/// first.
fn vote_backend(
    leader: BackendChoice,
    votes: impl Iterator<Item = BackendChoice>,
) -> BackendChoice {
    let mut tally: Vec<(BackendChoice, usize)> = vec![(leader, 1)];
    for v in votes {
        match tally.iter_mut().find(|(c, _)| *c == v) {
            Some((_, n)) => *n += 1,
            None => tally.push((v, 1)),
        }
    }
    let mut best = tally[0];
    for &(c, n) in &tally[1..] {
        let displaces_winner = n > best.1;
        // Join order inserted `c` into the tally; rank, not insertion order,
        // must pick among equally-requested challengers.
        let deterministic_tie = n == best.1 && best.0 != leader && c.rank() < best.0.rank();
        if displaces_winner || deterministic_tie {
            best = (c, n);
        }
    }
    best.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdm_core::miner::Miner;
    use tdm_core::Alphabet;

    fn db_of(s: &str) -> Arc<EventDb> {
        Arc::new(EventDb::from_str_symbols(&Alphabet::latin26(), s).unwrap())
    }

    fn cfg() -> MinerConfig {
        MinerConfig {
            alpha: 0.05,
            max_level: Some(3),
            ..Default::default()
        }
    }

    #[test]
    fn serves_and_matches_the_serial_miner() {
        let service = MiningService::new(ServiceConfig {
            workers: 2,
            ..Default::default()
        });
        let db = db_of(&"ABCXYZ".repeat(40));
        let serial = Miner::new(cfg())
            .mine(&db, &mut SequentialBackend::default())
            .unwrap();
        for backend in [
            BackendChoice::Sharded,
            BackendChoice::MapReduce,
            BackendChoice::ActiveSet,
            BackendChoice::Sequential,
            BackendChoice::SerialScan,
        ] {
            let resp = service
                .submit(&MiningRequest::new(Arc::clone(&db), cfg()).backend(backend))
                .unwrap();
            assert_eq!(resp.result, serial, "{backend:?}");
        }
        assert_eq!(service.stats().completed, 5);
    }

    #[test]
    fn repeat_requests_hit_the_cache() {
        let service = MiningService::new(ServiceConfig {
            workers: 1,
            ..Default::default()
        });
        let db = db_of(&"AB".repeat(60));
        let req = MiningRequest::new(Arc::clone(&db), cfg());
        let first = service.submit(&req).unwrap();
        assert_eq!(first.stats.cache, CacheOutcome::Miss);
        let second = service.submit(&req).unwrap();
        assert_eq!(second.stats.cache, CacheOutcome::Hit);
        assert_eq!(first.result, second.result);
        assert_eq!(service.cached_sessions(), 1);

        // Same content under a different Arc handle still hits (content
        // verification, not pointer identity).
        let clone = db_of(&"AB".repeat(60));
        let third = service.submit(&MiningRequest::new(clone, cfg())).unwrap();
        assert_eq!(third.stats.cache, CacheOutcome::Hit);

        // A different config misses.
        let other = MinerConfig {
            alpha: 0.2,
            ..cfg()
        };
        let fourth = service.submit(&MiningRequest::new(db, other)).unwrap();
        assert_eq!(fourth.stats.cache, CacheOutcome::Miss);
        assert_eq!(service.cached_sessions(), 2);
    }

    #[test]
    fn mine_errors_carry_the_taxonomy_and_do_not_poison_the_service() {
        struct Broken;
        impl Executor for Broken {
            fn execute(
                &mut self,
                req: &tdm_core::session::CountRequest<'_>,
            ) -> Result<tdm_core::session::Counts, tdm_core::session::BackendError> {
                Ok(vec![0; req.candidates() + 1])
            }
            fn name(&self) -> &str {
                "broken"
            }
        }
        let service = MiningService::new(ServiceConfig {
            workers: 1,
            ..Default::default()
        });
        let db = db_of(&"ABC".repeat(30));
        let req = MiningRequest::new(Arc::clone(&db), cfg());
        let err = service.submit_with(&req, &mut Broken).unwrap_err();
        match &err {
            ServeError::Mine(m) => assert_eq!(m.backend, "broken"),
            other => panic!("wrong error: {other:?}"),
        }
        assert!(!err.to_string().is_empty());
        assert_eq!(service.stats().failed, 1);
        // The parked session still serves healthy requests afterwards.
        let ok = service.submit(&req).unwrap();
        assert_eq!(ok.stats.cache, CacheOutcome::Hit);
        assert_eq!(service.stats().completed, 1);
    }

    #[test]
    fn fused_batch_matches_solo_results_and_counts_in_stats() {
        let service = Arc::new(MiningService::new(ServiceConfig {
            workers: 2,
            // A wide gate exercises the *window* formation path (the leader
            // is admitted immediately and holds the window open); the
            // saturated waiting-room path is covered by the workspace tests.
            max_in_flight: 8,
            comine_window: Duration::from_secs(5),
            comine_max_batch: 3,
            ..Default::default()
        }));
        let db = db_of(&"ABCABD".repeat(50));
        let configs = [
            MinerConfig {
                alpha: 0.05,
                max_level: Some(3),
                ..Default::default()
            },
            MinerConfig {
                alpha: 0.1,
                max_level: Some(2),
                ..Default::default()
            },
            MinerConfig {
                alpha: 0.01,
                max_level: Some(3),
                ..Default::default()
            },
        ];
        let serial: Vec<MiningResult> = configs
            .iter()
            .map(|cfg| {
                Miner::new(*cfg)
                    .mine(&db, &mut SequentialBackend::default())
                    .unwrap()
            })
            .collect();

        // The leader registers first; wait for its open window before the
        // joiners submit, so all three requests land in one batch (the batch
        // closes on max_batch, not the window).
        let mut responses: Vec<Option<MiningResponse>> = vec![None, None, None];
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            {
                let service = Arc::clone(&service);
                let req = MiningRequest::new(Arc::clone(&db), configs[0]);
                handles.push(s.spawn(move || service.submit(&req).unwrap()));
            }
            while service.open_batches() == 0 {
                std::thread::yield_now();
            }
            for cfg in &configs[1..] {
                let service = Arc::clone(&service);
                let req = MiningRequest::new(Arc::clone(&db), *cfg);
                handles.push(s.spawn(move || service.submit(&req).unwrap()));
            }
            for (slot, h) in responses.iter_mut().zip(handles) {
                *slot = Some(h.join().unwrap());
            }
        });
        for (i, (resp, want)) in responses.iter().zip(&serial).enumerate() {
            let resp = resp.as_ref().unwrap();
            assert_eq!(resp.result, *want, "member {i} diverged from solo mining");
            assert_eq!(resp.stats.cache, CacheOutcome::CoMined, "member {i}");
        }
        let stats = service.stats();
        assert_eq!(stats.completed, 3);
        assert_eq!(stats.comining.batches, 1);
        assert_eq!(stats.comining.fused_requests, 3);
        // The batch bypassed the session cache entirely.
        assert_eq!(stats.cache.hits + stats.cache.misses, 0);
        assert_eq!(service.open_batches(), 0);
    }

    #[test]
    fn lone_leader_falls_back_to_the_solo_cache_path() {
        let service = MiningService::new(ServiceConfig {
            workers: 1,
            comine_window: Duration::from_millis(5),
            ..Default::default()
        });
        let db = db_of(&"AB".repeat(60));
        let req = MiningRequest::new(Arc::clone(&db), cfg());
        let first = service.submit(&req).unwrap();
        assert_eq!(first.stats.cache, CacheOutcome::Miss);
        let second = service.submit(&req).unwrap();
        assert_eq!(second.stats.cache, CacheOutcome::Hit);
        assert_eq!(first.result, second.result);
        let stats = service.stats();
        assert_eq!(stats.comining.batches, 0);
        assert_eq!(stats.comining.solo_fallbacks, 2);
    }

    #[test]
    fn formation_window_counts_as_queueing_not_mining() {
        let service = MiningService::new(ServiceConfig {
            workers: 1,
            comine_window: Duration::from_millis(200),
            ..Default::default()
        });
        let db = db_of(&"AB".repeat(60));
        let resp = service.submit(&MiningRequest::new(db, cfg())).unwrap();
        // A lone leader waits out the whole window before mining solo: that
        // wait must be reported as queueing, never as mining time.
        assert!(
            resp.stats.queue_wait >= Duration::from_millis(200),
            "window wait missing from queue_wait: {:?}",
            resp.stats.queue_wait
        );
        assert!(
            resp.stats.mine_time < Duration::from_millis(200),
            "window wait leaked into mine_time: {:?}",
            resp.stats.mine_time
        );
    }

    #[test]
    fn failed_batches_count_batches_but_not_fused_requests() {
        struct Broken;
        impl Executor for Broken {
            fn execute(
                &mut self,
                req: &tdm_core::session::CountRequest<'_>,
            ) -> Result<tdm_core::session::Counts, tdm_core::session::BackendError> {
                Ok(vec![0; req.candidates() + 1])
            }
            fn name(&self) -> &str {
                "broken"
            }
        }
        let service = Arc::new(MiningService::new(ServiceConfig {
            workers: 1,
            max_in_flight: 4,
            comine_window: Duration::from_secs(5),
            comine_max_batch: 2,
            ..Default::default()
        }));
        let db = db_of(&"ABC".repeat(40));
        std::thread::scope(|s| {
            {
                let service = Arc::clone(&service);
                let req = MiningRequest::new(Arc::clone(&db), cfg());
                // The leader's broken executor fails the whole batch.
                s.spawn(move || {
                    let err = service.submit_with(&req, &mut Broken).unwrap_err();
                    assert!(matches!(err, ServeError::Mine(_)));
                });
            }
            while service.open_batches() == 0 {
                std::thread::yield_now();
            }
            let other = MinerConfig {
                alpha: 0.3,
                ..cfg()
            };
            let err = service
                .submit(&MiningRequest::new(Arc::clone(&db), other))
                .unwrap_err();
            assert!(matches!(err, ServeError::Mine(_)));
        });
        let stats = service.stats();
        assert_eq!(stats.failed, 2);
        assert_eq!(stats.comining.batches, 1);
        // No one was *served* from the failed scan.
        assert_eq!(stats.comining.fused_requests, 0);
    }

    #[test]
    fn backend_vote_tallies_with_leader_tiebreak() {
        use BackendChoice::*;
        // No joiners: the leader's own choice stands.
        assert_eq!(vote_backend(Sharded, std::iter::empty()), Sharded);
        // A strict majority overrides the leader.
        assert_eq!(
            vote_backend(Sharded, [MapReduce, MapReduce].into_iter()),
            MapReduce
        );
        // A tie (1 leader vote vs 1 joiner vote) keeps the leader's choice.
        assert_eq!(vote_backend(Sharded, [MapReduce].into_iter()), Sharded);
        // 2 vs 2 across leader+joiners still resolves to the leader.
        assert_eq!(
            vote_backend(Sharded, [Sharded, MapReduce, MapReduce].into_iter()),
            Sharded
        );
        // Joiners agreeing with the leader pile onto its tally.
        assert_eq!(
            vote_backend(Sharded, [Sharded, MapReduce].into_iter()),
            Sharded
        );
    }

    #[test]
    fn backend_vote_challenger_ties_resolve_by_rank_not_join_order() {
        use BackendChoice::*;
        // Two challengers at 2 votes each both strictly outvote the leader's
        // 1. Whichever permutation the joiners arrive in, the lower-ranked
        // (declaration-order) challenger wins — a CPU-vs-GPU class split
        // cannot flip on join order.
        let winner = vote_backend(
            Sequential,
            [GpuPipeline, MapReduce, GpuPipeline, MapReduce].into_iter(),
        );
        assert_eq!(winner, MapReduce);
        assert_eq!(
            vote_backend(
                Sequential,
                [MapReduce, GpuPipeline, MapReduce, GpuPipeline].into_iter(),
            ),
            winner,
            "join order changed the vote outcome"
        );
        // Rank only arbitrates between challengers: a lower-ranked challenger
        // that merely *ties* the leader never displaces it.
        assert_eq!(vote_backend(SerialScan, [Sharded].into_iter()), SerialScan);
        // A strict GPU majority elects the pipeline over a CPU leader.
        assert_eq!(
            vote_backend(Sequential, [GpuPipeline, GpuPipeline].into_iter()),
            GpuPipeline
        );
    }

    #[test]
    fn gpu_majority_overrides_cpu_leader_and_serves_identical_counts() {
        let service = Arc::new(MiningService::new(ServiceConfig {
            workers: 2,
            max_in_flight: 8,
            comine_window: Duration::from_secs(5),
            comine_max_batch: 3,
            ..Default::default()
        }));
        let db = db_of(&"ABCABD".repeat(50));
        let configs = [
            MinerConfig {
                alpha: 0.05,
                max_level: Some(3),
                ..Default::default()
            },
            MinerConfig {
                alpha: 0.1,
                max_level: Some(2),
                ..Default::default()
            },
            MinerConfig {
                alpha: 0.01,
                max_level: Some(3),
                ..Default::default()
            },
        ];
        let serial: Vec<MiningResult> = configs
            .iter()
            .map(|cfg| {
                Miner::new(*cfg)
                    .mine(&db, &mut SequentialBackend::default())
                    .unwrap()
            })
            .collect();

        // The leader declares a CPU backend; both joiners vote for the GPU
        // pipeline. The 2-vs-1 class split must override the leader, count
        // the override, and still serve bit-identical results through the
        // union-launch pipeline sized for the 3-member batch.
        let mut responses: Vec<Option<MiningResponse>> = vec![None, None, None];
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            {
                let service = Arc::clone(&service);
                let req = MiningRequest::new(Arc::clone(&db), configs[0])
                    .backend(BackendChoice::Sequential);
                handles.push(s.spawn(move || service.submit(&req).unwrap()));
            }
            while service.open_batches() == 0 {
                std::thread::yield_now();
            }
            for cfg in &configs[1..] {
                let service = Arc::clone(&service);
                let req =
                    MiningRequest::new(Arc::clone(&db), *cfg).backend(BackendChoice::GpuPipeline);
                handles.push(s.spawn(move || service.submit(&req).unwrap()));
            }
            for (slot, h) in responses.iter_mut().zip(handles) {
                *slot = Some(h.join().unwrap());
            }
        });
        for (i, (resp, want)) in responses.iter().zip(&serial).enumerate() {
            let resp = resp.as_ref().unwrap();
            assert_eq!(resp.result, *want, "member {i} diverged from solo mining");
        }
        let stats = service.stats();
        assert_eq!(stats.comining.batches, 1);
        assert_eq!(stats.comining.fused_requests, 3);
        assert_eq!(
            stats.comining.backend_votes_overridden, 1,
            "the leader's CPU choice lost the vote exactly once"
        );
    }

    #[test]
    fn gpu_backend_serves_a_solo_request() {
        let service = MiningService::new(ServiceConfig {
            workers: 1,
            ..Default::default()
        });
        let db = db_of(&"ABCXYZ".repeat(40));
        let serial = Miner::new(cfg())
            .mine(&db, &mut SequentialBackend::default())
            .unwrap();
        let resp = service
            .submit(&MiningRequest::new(Arc::clone(&db), cfg()).backend(BackendChoice::GpuPipeline))
            .unwrap();
        assert_eq!(resp.result, serial);
        assert!(BackendChoice::GpuPipeline.is_gpu());
        assert!(!BackendChoice::Sharded.is_gpu());
    }

    #[test]
    fn overload_rejection_is_immediate_and_counted() {
        // One slot, zero-size waiting room: a second concurrent request is
        // rejected while the first blocks the slot.
        let service = Arc::new(MiningService::new(ServiceConfig {
            workers: 1,
            max_in_flight: 1,
            max_pending: 1,
            ..Default::default()
        }));
        // Fill the slot from another thread with a long-ish request, then
        // saturate the waiting room.
        let db = db_of(&"ABCDEFGH".repeat(400));
        let req = MiningRequest::new(Arc::clone(&db), MinerConfig::default());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let service = Arc::clone(&service);
                let req = req.clone();
                s.spawn(move || {
                    // Outcomes race between Ok and Overloaded; both are legal.
                    let _ = service.submit(&req);
                });
            }
        });
        let stats = service.stats();
        assert_eq!(stats.completed + stats.rejected, 4);
    }

    /// A correct executor that dawdles: each level scan counts for real but
    /// takes at least `delay`, so a short deadline expires between levels.
    struct Dawdler {
        delay: Duration,
        executes: usize,
    }
    impl Executor for Dawdler {
        fn execute(
            &mut self,
            req: &tdm_core::session::CountRequest<'_>,
        ) -> Result<tdm_core::session::Counts, tdm_core::session::BackendError> {
            std::thread::sleep(self.delay);
            self.executes += 1;
            let mut scratch = tdm_core::engine::CountScratch::new();
            Ok(req.compiled().count(req.stream(), &mut scratch))
        }
        fn name(&self) -> &str {
            "dawdler"
        }
    }

    #[test]
    fn deadline_expiry_cancels_mid_loop_and_releases_the_slot() {
        let service = MiningService::new(ServiceConfig {
            workers: 1,
            max_in_flight: 1,
            ..Default::default()
        });
        let db = db_of(&"ABCD".repeat(50));
        let config = MinerConfig {
            alpha: 0.01,
            max_level: Some(6),
            ..Default::default()
        };
        let mut spy = Dawdler {
            delay: Duration::from_millis(40),
            executes: 0,
        };
        let req = MiningRequest::new(Arc::clone(&db), config).deadline(Duration::from_millis(10));
        let err = service.submit_with(&req, &mut spy).unwrap_err();
        match err {
            ServeError::Cancelled { level } => assert!(level >= 1, "level {level}"),
            other => panic!("wrong error: {other:?}"),
        }
        // Later levels never executed: at most one scan fit the 10ms budget.
        assert!(spy.executes <= 1, "executed {} levels", spy.executes);
        assert_eq!(service.stats().cancelled, 1);

        // The in-flight slot was released (max_in_flight=1: a stuck slot
        // would deadlock) and the parked session carries no stale token.
        let ok = service
            .submit(&MiningRequest::new(db, config))
            .expect("slot released and token cleared");
        assert_eq!(ok.stats.cache, CacheOutcome::Hit);
        assert_eq!(service.stats().completed, 1);
    }

    #[test]
    fn caller_held_token_cancels_before_the_first_scan() {
        let service = MiningService::new(ServiceConfig {
            workers: 1,
            ..Default::default()
        });
        let db = db_of(&"AB".repeat(40));
        let token = tdm_core::CancelToken::new();
        token.cancel();
        let mut spy = Dawdler {
            delay: Duration::ZERO,
            executes: 0,
        };
        let req = MiningRequest::new(db, cfg()).cancel_token(token);
        let err = service.submit_with(&req, &mut spy).unwrap_err();
        assert_eq!(err, ServeError::Cancelled { level: 1 });
        assert_eq!(spy.executes, 0, "no scan may run after cancellation");
    }
}
