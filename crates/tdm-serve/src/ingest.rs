//! Trigger-fenced streaming ingestion: per-tenant append buffers whose
//! re-mines ride the service's waiting-room batch board.
//!
//! A live tenant does not re-mine on every appended symbol — it buffers, and
//! a **trigger** (count or age) seals the buffer into a *window*: one atomic
//! append onto the tenant's committed [`EventDb`] (epoch bump, fresh stream
//! buffer — snapshots held by in-flight requests stay valid) followed by one
//! re-mine of the grown stream. The **fence** is the exactly-once guarantee:
//!
//! * a window is sealed only while the tenant's fence is idle, and sealing
//!   raises the fence in the same lock acquisition that drains the buffer —
//!   so each appended symbol is committed into exactly one window, and each
//!   window is re-mined exactly once, never double-processed;
//! * appends that arrive while a re-mine is in flight simply buffer behind
//!   the fence and land in the **next** window (the next trigger evaluation
//!   seals them);
//! * the fence drops when the window's re-mine returns — on success *or*
//!   failure, so a failed backend never wedges a tenant.
//!
//! Re-mines go through [`MiningService::submit`], which enters the co-mining
//! batch board **before** admission: when several tenants over the same
//! stream content flush concurrently, their re-mines fuse into a single
//! `CoSession` union scan per level, exactly like interactive requests do.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use tdm_core::{CoreError, EventDb, MinerConfig};

use crate::service::{CacheOutcome, MiningRequest, MiningResponse, MiningService, ServeError};

/// When a tenant's buffered appends are sealed into a window and re-mined.
/// Both triggers may be armed at once; whichever fires first seals.
#[derive(Debug, Clone, Copy)]
pub struct IngestTriggers {
    /// Seal once this many symbols are buffered (0 disables the count
    /// trigger — only [`StreamIngest::flush`] / the age trigger seal).
    pub flush_count: usize,
    /// Seal once the oldest buffered symbol is this old. Age is evaluated by
    /// [`StreamIngest::due`] (there is no background thread); `ZERO`
    /// disables the age trigger.
    pub flush_age: Duration,
}

impl Default for IngestTriggers {
    fn default() -> Self {
        IngestTriggers {
            flush_count: 256,
            flush_age: Duration::ZERO,
        }
    }
}

/// The trigger/fence state machine's in-flight marker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fence {
    /// No re-mine in flight: the next fired trigger may seal a window.
    Idle,
    /// Window `window`'s re-mine is in flight: appends buffer behind the
    /// fence and land in the next window.
    InFlight { window: u64 },
}

/// One tenant's streaming state: the committed epoch-versioned database, the
/// pending buffer, and the fence.
#[derive(Debug)]
struct Tenant {
    db: Arc<EventDb>,
    config: MinerConfig,
    triggers: IngestTriggers,
    pending: Vec<u8>,
    /// When the oldest symbol of `pending` arrived (the age trigger's clock).
    buffered_at: Option<Instant>,
    fence: Fence,
    windows_sealed: u64,
}

impl Tenant {
    fn count_trigger_fired(&self) -> bool {
        self.triggers.flush_count > 0 && self.pending.len() >= self.triggers.flush_count
    }

    fn age_trigger_fired(&self) -> bool {
        !self.triggers.flush_age.is_zero()
            && self
                .buffered_at
                .is_some_and(|t| t.elapsed() >= self.triggers.flush_age)
    }

    /// Seals the pending buffer into window N: drains the buffer, commits it
    /// onto the database (epoch bump, snapshots stay valid), and raises the
    /// fence — all under the caller's lock, so no symbol can land in two
    /// windows and no window can seal twice.
    fn seal(&mut self) -> SealedWindow {
        let batch = std::mem::take(&mut self.pending);
        self.buffered_at = None;
        let mut grown = EventDb::clone(&self.db);
        grown
            .extend(&batch)
            .expect("symbols validated at append time");
        self.db = Arc::new(grown);
        let window = self.windows_sealed;
        self.windows_sealed += 1;
        self.fence = Fence::InFlight { window };
        SealedWindow {
            window,
            snapshot: Arc::clone(&self.db),
            config: self.config,
            symbols: batch.len(),
            epoch: self.db.epoch(),
        }
    }
}

/// A sealed window, carried out of the lock to its (single) re-mine.
struct SealedWindow {
    window: u64,
    snapshot: Arc<EventDb>,
    config: MinerConfig,
    symbols: usize,
    epoch: u64,
}

/// What happened to an [`StreamIngest::append`].
#[derive(Debug)]
pub enum AppendOutcome {
    /// The symbols were buffered; no trigger fired, or a re-mine was in
    /// flight (fenced) and they will land in the next window.
    Buffered {
        /// Symbols now pending for the tenant.
        pending: usize,
        /// True when a trigger had fired but the fence deferred sealing to
        /// the next window.
        deferred: bool,
    },
    /// The append fired a trigger: the window was sealed and re-mined.
    Flushed(FlushReport),
}

/// One sealed-and-re-mined window.
#[derive(Debug)]
pub struct FlushReport {
    /// The window's id (consecutive per tenant, starting at 0).
    pub window: u64,
    /// The committed database's epoch after this window ([`EventDb::epoch`]).
    pub epoch: u64,
    /// Symbols the window committed.
    pub symbols: usize,
    /// The re-mine of the grown stream — `stats.cache` is
    /// [`CacheOutcome::CoMined`] when this window's scan fused with
    /// concurrent same-content re-mines on the batch board.
    pub response: MiningResponse,
}

/// Why an ingest call failed.
#[derive(Debug)]
pub enum IngestError {
    /// No tenant registered under that name.
    UnknownTenant(String),
    /// [`StreamIngest::register`] was called twice for one name.
    DuplicateTenant(String),
    /// The tenant's database carries timestamps; the symbol-only append path
    /// cannot grow it.
    TimedStream(String),
    /// A core-layer validation failed (e.g. an appended symbol outside the
    /// tenant's alphabet); nothing was buffered.
    Core(CoreError),
    /// The window's re-mine failed in the service; the window is still
    /// committed (its symbols are in the stream) and the fence was released.
    Serve(ServeError),
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::UnknownTenant(t) => write!(f, "unknown tenant {t:?}"),
            IngestError::DuplicateTenant(t) => write!(f, "tenant {t:?} already registered"),
            IngestError::TimedStream(t) => {
                write!(
                    f,
                    "tenant {t:?} has a timestamped database; streaming ingestion is symbol-only"
                )
            }
            IngestError::Core(e) => write!(f, "append rejected: {e}"),
            IngestError::Serve(e) => write!(f, "window re-mine failed: {e}"),
        }
    }
}

impl std::error::Error for IngestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IngestError::Core(e) => Some(e),
            IngestError::Serve(e) => Some(e),
            _ => None,
        }
    }
}

/// Aggregate ingestion counters ([`StreamIngest::stats`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct IngestStats {
    /// Append calls accepted (across all tenants).
    pub appends: u64,
    /// Symbols accepted into buffers.
    pub appended_symbols: u64,
    /// Appends whose fired trigger was deferred by a held fence (their
    /// symbols landed in the next window).
    pub deferred_appends: u64,
    /// Windows sealed (== committed epochs across tenants).
    pub windows_sealed: u64,
    /// Window re-mines that completed successfully.
    pub remines: u64,
    /// Of those, re-mines that fused with concurrent same-content re-mines
    /// into one union scan on the batch board.
    pub fused_remines: u64,
}

/// A point-in-time view of one tenant ([`StreamIngest::tenant`]).
#[derive(Debug, Clone, Copy)]
pub struct TenantSnapshot {
    /// Symbols buffered behind the (possibly held) fence.
    pub pending: usize,
    /// Committed stream length.
    pub stream_len: usize,
    /// Committed database epoch.
    pub epoch: u64,
    /// Windows sealed so far.
    pub windows_sealed: u64,
    /// The window id currently being re-mined, if the fence is held.
    pub in_flight_window: Option<u64>,
}

/// The streaming front door of a [`MiningService`]: registered tenants
/// append symbols, triggers seal windows, and every sealed window is
/// re-mined exactly once through the service (fusing with concurrent
/// same-content re-mines on the batch board).
///
/// ```
/// use std::sync::Arc;
/// use tdm_core::{Alphabet, EventDb, MinerConfig};
/// use tdm_serve::ingest::{AppendOutcome, IngestTriggers, StreamIngest};
/// use tdm_serve::{MiningService, ServiceConfig};
///
/// let service = Arc::new(MiningService::new(ServiceConfig { workers: 1, ..Default::default() }));
/// let ingest = StreamIngest::new(Arc::clone(&service));
/// let seed = EventDb::from_str_symbols(&Alphabet::latin26(), &"ABC".repeat(30)).unwrap();
/// ingest
///     .register(
///         "sensor-7",
///         seed,
///         MinerConfig { alpha: 0.05, max_level: Some(2), ..Default::default() },
///         IngestTriggers { flush_count: 4, ..Default::default() },
///     )
///     .unwrap();
///
/// // Three symbols buffer; the fourth fires the count trigger, seals
/// // window 0 (epoch 1), and re-mines the grown stream.
/// ingest.append("sensor-7", &[0, 1, 2]).unwrap();
/// match ingest.append("sensor-7", &[0]).unwrap() {
///     AppendOutcome::Flushed(report) => {
///         assert_eq!((report.window, report.epoch, report.symbols), (0, 1, 4));
///         assert!(report.response.result.total_frequent() > 0);
///     }
///     other => panic!("count trigger should have sealed: {other:?}"),
/// }
/// ```
pub struct StreamIngest {
    service: Arc<MiningService>,
    tenants: Mutex<HashMap<String, Tenant>>,
    stats: Mutex<IngestStats>,
}

impl std::fmt::Debug for StreamIngest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamIngest")
            .field(
                "tenants",
                &self.tenants.lock().expect("ingest tenants").len(),
            )
            .finish()
    }
}

impl StreamIngest {
    /// An ingestion front door over `service`. Re-mines are submitted
    /// through it and obey its admission gate, caches, and co-mining window.
    pub fn new(service: Arc<MiningService>) -> Self {
        StreamIngest {
            service,
            tenants: Mutex::new(HashMap::new()),
            stats: Mutex::new(IngestStats::default()),
        }
    }

    /// Registers a tenant: its seed database (the committed epoch-0 stream),
    /// the mining configuration its windows re-mine with, and its triggers.
    ///
    /// # Errors
    /// [`IngestError::DuplicateTenant`] for a name already registered;
    /// [`IngestError::TimedStream`] for a timestamped database (the append
    /// path is symbol-only).
    pub fn register(
        &self,
        name: &str,
        db: EventDb,
        config: MinerConfig,
        triggers: IngestTriggers,
    ) -> Result<(), IngestError> {
        if db.times().is_some() {
            return Err(IngestError::TimedStream(name.to_string()));
        }
        let mut tenants = self.tenants.lock().expect("ingest tenants");
        if tenants.contains_key(name) {
            return Err(IngestError::DuplicateTenant(name.to_string()));
        }
        tenants.insert(
            name.to_string(),
            Tenant {
                db: Arc::new(db),
                config,
                triggers,
                pending: Vec::new(),
                buffered_at: None,
                fence: Fence::Idle,
                windows_sealed: 0,
            },
        );
        Ok(())
    }

    /// Appends symbols to a tenant's buffer and evaluates the count trigger:
    /// if it fires and the fence is idle, the window seals and re-mines
    /// **on this thread** before returning (so the caller sees the result);
    /// if it fires under a held fence, the symbols are deferred to the next
    /// window.
    ///
    /// # Errors
    /// [`IngestError::Core`] rejects out-of-alphabet symbols without
    /// buffering anything; [`IngestError::Serve`] reports a failed re-mine
    /// (the window's symbols are committed and the fence released — the
    /// stream is not rolled back under a sick backend).
    pub fn append(&self, tenant: &str, symbols: &[u8]) -> Result<AppendOutcome, IngestError> {
        let sealed = {
            let mut tenants = self.tenants.lock().expect("ingest tenants");
            let t = tenants
                .get_mut(tenant)
                .ok_or_else(|| IngestError::UnknownTenant(tenant.to_string()))?;
            let alphabet = t.db.alphabet().len();
            if let Some(&bad) = symbols.iter().find(|&&c| (c as usize) >= alphabet) {
                return Err(IngestError::Core(CoreError::SymbolOutOfRange {
                    id: bad,
                    alphabet,
                }));
            }
            t.pending.extend_from_slice(symbols);
            if !t.pending.is_empty() {
                t.buffered_at.get_or_insert_with(Instant::now);
            }
            let mut stats = self.stats.lock().expect("ingest stats");
            stats.appends += 1;
            stats.appended_symbols += symbols.len() as u64;
            if !t.count_trigger_fired() {
                None
            } else if t.fence != Fence::Idle {
                stats.deferred_appends += 1;
                drop(stats);
                return Ok(AppendOutcome::Buffered {
                    pending: t.pending.len(),
                    deferred: true,
                });
            } else {
                stats.windows_sealed += 1;
                drop(stats);
                Some(t.seal())
            }
        };
        match sealed {
            None => {
                let tenants = self.tenants.lock().expect("ingest tenants");
                let pending = tenants.get(tenant).map_or(0, |t| t.pending.len());
                Ok(AppendOutcome::Buffered {
                    pending,
                    deferred: false,
                })
            }
            Some(window) => Ok(AppendOutcome::Flushed(self.remine(tenant, window)?)),
        }
    }

    /// Force-seals a tenant's pending buffer (any size) and re-mines it —
    /// the age-trigger driver: pair with [`due`](StreamIngest::due).
    /// Returns `Ok(None)` when there is nothing to flush or a re-mine is
    /// already in flight (the fenced window will carry the symbols).
    ///
    /// # Errors
    /// As [`append`](StreamIngest::append).
    pub fn flush(&self, tenant: &str) -> Result<Option<FlushReport>, IngestError> {
        let sealed = {
            let mut tenants = self.tenants.lock().expect("ingest tenants");
            let t = tenants
                .get_mut(tenant)
                .ok_or_else(|| IngestError::UnknownTenant(tenant.to_string()))?;
            if t.pending.is_empty() || t.fence != Fence::Idle {
                None
            } else {
                self.stats.lock().expect("ingest stats").windows_sealed += 1;
                Some(t.seal())
            }
        };
        match sealed {
            None => Ok(None),
            Some(window) => Ok(Some(self.remine(tenant, window)?)),
        }
    }

    /// Tenants whose **age** trigger has fired (oldest buffered symbol older
    /// than `flush_age`, fence idle). A driver loop calls this periodically
    /// and [`flush`](StreamIngest::flush)es each.
    pub fn due(&self) -> Vec<String> {
        let tenants = self.tenants.lock().expect("ingest tenants");
        let mut due: Vec<String> = tenants
            .iter()
            .filter(|(_, t)| t.fence == Fence::Idle && t.age_trigger_fired())
            .map(|(name, _)| name.clone())
            .collect();
        due.sort();
        due
    }

    /// The one re-mine of a sealed window. Runs outside the tenants lock —
    /// concurrent appends buffer behind the fence meanwhile — and releases
    /// the fence when the service returns, success or failure.
    fn remine(&self, tenant: &str, sealed: SealedWindow) -> Result<FlushReport, IngestError> {
        let request = MiningRequest::new(Arc::clone(&sealed.snapshot), sealed.config);
        let outcome = self.service.submit(&request);
        {
            let mut tenants = self.tenants.lock().expect("ingest tenants");
            if let Some(t) = tenants.get_mut(tenant) {
                debug_assert_eq!(
                    t.fence,
                    Fence::InFlight {
                        window: sealed.window
                    }
                );
                t.fence = Fence::Idle;
            }
        }
        let response = outcome.map_err(IngestError::Serve)?;
        {
            let mut stats = self.stats.lock().expect("ingest stats");
            stats.remines += 1;
            if response.stats.cache == CacheOutcome::CoMined {
                stats.fused_remines += 1;
            }
        }
        Ok(FlushReport {
            window: sealed.window,
            epoch: sealed.epoch,
            symbols: sealed.symbols,
            response,
        })
    }

    /// A point-in-time view of one tenant, or `None` if unregistered.
    pub fn tenant(&self, name: &str) -> Option<TenantSnapshot> {
        let tenants = self.tenants.lock().expect("ingest tenants");
        tenants.get(name).map(|t| TenantSnapshot {
            pending: t.pending.len(),
            stream_len: t.db.len(),
            epoch: t.db.epoch(),
            windows_sealed: t.windows_sealed,
            in_flight_window: match t.fence {
                Fence::Idle => None,
                Fence::InFlight { window } => Some(window),
            },
        })
    }

    /// A shared handle to a tenant's committed database snapshot (the stream
    /// as of the last sealed window; pending symbols are not in it).
    pub fn snapshot(&self, name: &str) -> Option<Arc<EventDb>> {
        let tenants = self.tenants.lock().expect("ingest tenants");
        tenants.get(name).map(|t| Arc::clone(&t.db))
    }

    /// Aggregate ingestion counters since construction.
    pub fn stats(&self) -> IngestStats {
        *self.stats.lock().expect("ingest stats")
    }

    /// The service re-mines are submitted through.
    pub fn service(&self) -> &Arc<MiningService> {
        &self.service
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use tdm_core::miner::{Miner, SequentialBackend};
    use tdm_core::Alphabet;

    fn cfg() -> MinerConfig {
        MinerConfig {
            alpha: 0.05,
            max_level: Some(2),
            ..Default::default()
        }
    }

    fn seed(s: &str) -> EventDb {
        EventDb::from_str_symbols(&Alphabet::latin26(), s).unwrap()
    }

    #[test]
    fn count_trigger_seals_exactly_once_and_matches_batch_mining() {
        let service = Arc::new(MiningService::new(ServiceConfig {
            workers: 1,
            ..Default::default()
        }));
        let ingest = StreamIngest::new(service);
        ingest
            .register(
                "t",
                seed(&"ABC".repeat(20)),
                cfg(),
                IngestTriggers {
                    flush_count: 4,
                    ..Default::default()
                },
            )
            .unwrap();

        match ingest.append("t", &[0, 1, 2]).unwrap() {
            AppendOutcome::Buffered {
                pending: 3,
                deferred: false,
            } => {}
            other => panic!("below the trigger: {other:?}"),
        }
        let report = match ingest.append("t", &[0]).unwrap() {
            AppendOutcome::Flushed(r) => r,
            other => panic!("trigger should seal: {other:?}"),
        };
        assert_eq!((report.window, report.epoch, report.symbols), (0, 1, 4));

        // The re-mine saw exactly the concatenated stream.
        let grown = ingest.snapshot("t").unwrap();
        assert_eq!(grown.len(), 64);
        let want = Miner::new(cfg())
            .mine(&grown, &mut SequentialBackend::default())
            .unwrap();
        assert_eq!(report.response.result, want);

        // The window drained: nothing pending, nothing to flush again.
        let snap = ingest.tenant("t").unwrap();
        assert_eq!(
            (snap.pending, snap.windows_sealed, snap.in_flight_window),
            (0, 1, None)
        );
        assert!(ingest.flush("t").unwrap().is_none());
        assert_eq!(ingest.stats().windows_sealed, 1);
    }

    #[test]
    fn appends_during_a_remine_defer_to_the_next_window() {
        // One admission slot held by a blocked request: the tenant's window-0
        // re-mine queues at the gate with the fence held, so a concurrent
        // append must buffer behind the fence and land in window 1.
        let service = Arc::new(MiningService::new(ServiceConfig {
            workers: 1,
            max_in_flight: 1,
            ..Default::default()
        }));
        let ingest = Arc::new(StreamIngest::new(Arc::clone(&service)));
        ingest
            .register(
                "t",
                seed(&"ABAB".repeat(20)),
                cfg(),
                IngestTriggers {
                    flush_count: 2,
                    ..Default::default()
                },
            )
            .unwrap();

        struct Gate(std::sync::mpsc::Receiver<()>);
        impl tdm_core::session::Executor for Gate {
            fn execute(
                &mut self,
                req: &tdm_core::session::CountRequest<'_>,
            ) -> Result<tdm_core::session::Counts, tdm_core::session::BackendError> {
                self.0.recv().ok();
                Ok(req
                    .compiled()
                    .count(req.stream(), &mut tdm_core::engine::CountScratch::new()))
            }
            fn name(&self) -> &str {
                "gate"
            }
        }
        let (open, held) = std::sync::mpsc::channel();
        let blocker_db = Arc::new(seed(&"XYZ".repeat(20)));

        std::thread::scope(|s| {
            {
                let service = Arc::clone(&service);
                s.spawn(move || {
                    let req = MiningRequest::new(blocker_db, cfg());
                    service.submit_with(&req, &mut Gate(held)).unwrap();
                });
            }
            while service.in_flight() == 0 {
                std::thread::yield_now();
            }
            // Window 0 seals immediately but its re-mine queues at the gate.
            let flusher = {
                let ingest = Arc::clone(&ingest);
                s.spawn(move || match ingest.append("t", &[0, 1]).unwrap() {
                    AppendOutcome::Flushed(r) => r,
                    other => panic!("trigger should seal window 0: {other:?}"),
                })
            };
            while ingest.tenant("t").unwrap().in_flight_window.is_none() {
                std::thread::yield_now();
            }

            // Fence held: this append fires the count trigger but defers.
            match ingest.append("t", &[0, 1, 0]).unwrap() {
                AppendOutcome::Buffered {
                    pending: 3,
                    deferred: true,
                } => {}
                other => panic!("fence should defer: {other:?}"),
            }

            // Dropping the sender unblocks every per-level `recv` at once.
            drop(open);
            let report = flusher.join().unwrap();
            assert_eq!((report.window, report.symbols), (0, 2));
        });

        // The deferred symbols are still pending, fence released; the next
        // trigger evaluation seals them as window 1.
        let snap = ingest.tenant("t").unwrap();
        assert_eq!((snap.pending, snap.in_flight_window), (3, None));
        let report = ingest.flush("t").unwrap().expect("deferred window seals");
        assert_eq!((report.window, report.epoch, report.symbols), (1, 2, 3));
        assert_eq!(ingest.stats().deferred_appends, 1);
        assert_eq!(ingest.tenant("t").unwrap().stream_len, 85);
    }

    #[test]
    fn age_trigger_reports_due_tenants() {
        let service = Arc::new(MiningService::new(ServiceConfig {
            workers: 1,
            ..Default::default()
        }));
        let ingest = StreamIngest::new(service);
        ingest
            .register(
                "slow",
                seed(&"AB".repeat(30)),
                cfg(),
                IngestTriggers {
                    flush_count: 0,
                    flush_age: Duration::from_millis(1),
                },
            )
            .unwrap();
        ingest
            .register(
                "idle",
                seed(&"AB".repeat(30)),
                cfg(),
                IngestTriggers {
                    flush_count: 0,
                    flush_age: Duration::from_millis(1),
                },
            )
            .unwrap();

        assert!(ingest.due().is_empty(), "nothing buffered yet");
        ingest.append("slow", &[0, 1]).unwrap();
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(ingest.due(), vec!["slow".to_string()]);

        let report = ingest.flush("slow").unwrap().expect("age-due buffer seals");
        assert_eq!((report.window, report.symbols), (0, 2));
        assert!(ingest.due().is_empty(), "flushed tenant no longer due");
    }

    #[test]
    fn same_content_tenants_fuse_on_the_batch_board() {
        let service = Arc::new(MiningService::new(ServiceConfig {
            workers: 2,
            max_in_flight: 8,
            comine_window: Duration::from_secs(5),
            comine_max_batch: 2,
            ..Default::default()
        }));
        let ingest = Arc::new(StreamIngest::new(Arc::clone(&service)));
        // Two tenants over identical stream content (different configs):
        // their window-0 re-mines share a db hash and fuse into one batch.
        let deep = MinerConfig {
            alpha: 0.01,
            max_level: Some(3),
            ..Default::default()
        };
        for (name, config) in [("a", cfg()), ("b", deep)] {
            ingest
                .register(
                    name,
                    seed(&"ABCABD".repeat(40)),
                    config,
                    IngestTriggers {
                        flush_count: 1,
                        ..Default::default()
                    },
                )
                .unwrap();
        }
        std::thread::scope(|s| {
            let leader = {
                let ingest = Arc::clone(&ingest);
                s.spawn(move || match ingest.append("a", &[0]).unwrap() {
                    AppendOutcome::Flushed(r) => r,
                    other => panic!("count trigger should seal: {other:?}"),
                })
            };
            while service.open_batches() == 0 {
                std::thread::yield_now();
            }
            let joined = match ingest.append("b", &[0]).unwrap() {
                AppendOutcome::Flushed(r) => r,
                other => panic!("count trigger should seal: {other:?}"),
            };
            let led = leader.join().unwrap();
            assert_eq!(led.response.stats.cache, CacheOutcome::CoMined);
            assert_eq!(joined.response.stats.cache, CacheOutcome::CoMined);
        });
        assert_eq!(service.stats().comining.batches, 1);
        assert_eq!(ingest.stats().fused_remines, 2);

        // Fused or not, each tenant's result equals solo batch mining.
        for (name, config) in [("a", cfg()), ("b", deep)] {
            let db = ingest.snapshot(name).unwrap();
            let want = Miner::new(config)
                .mine(&db, &mut SequentialBackend::default())
                .unwrap();
            let again = ingest.flush(name).unwrap();
            assert!(again.is_none(), "window already processed");
            let resp = service.submit(&MiningRequest::new(db, config)).unwrap();
            assert_eq!(resp.result, want, "tenant {name}");
        }
    }

    #[test]
    fn validation_errors_reject_without_buffering() {
        let service = Arc::new(MiningService::new(ServiceConfig {
            workers: 1,
            ..Default::default()
        }));
        let ingest = StreamIngest::new(service);
        ingest
            .register("t", seed("ABAB"), cfg(), IngestTriggers::default())
            .unwrap();

        assert!(matches!(
            ingest.append("ghost", &[0]),
            Err(IngestError::UnknownTenant(_))
        ));
        assert!(matches!(
            ingest.append("t", &[0, 99]),
            Err(IngestError::Core(CoreError::SymbolOutOfRange {
                id: 99,
                ..
            }))
        ));
        assert_eq!(ingest.tenant("t").unwrap().pending, 0);

        assert!(matches!(
            ingest.register("t", seed("AB"), cfg(), IngestTriggers::default()),
            Err(IngestError::DuplicateTenant(_))
        ));
        let timed = EventDb::with_times(Alphabet::latin26(), vec![0, 1], vec![1, 2]).unwrap();
        assert!(matches!(
            ingest.register("timed", timed, cfg(), IngestTriggers::default()),
            Err(IngestError::TimedStream(_))
        ));
    }
}
