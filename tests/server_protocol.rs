//! Protocol-robustness suite: the server must survive hostile clients.
//!
//! Malformed JSON, truncated frames, oversized length prefixes, unknown
//! request types, bad API keys, and fully random byte streams — the server
//! never panics, always answers a typed error or closes cleanly, and leaks
//! no handler threads (active-connection and quota accounting return to
//! idle after every abuse).

use std::time::{Duration, Instant};

use proptest::prelude::*;
use tdm_server::client::{mine_request, stats_request};
use tdm_server::json::Value;
use tdm_server::{Client, Server, ServerConfig, TenantConfig};

fn test_server(max_frame: usize) -> Server {
    Server::bind(ServerConfig {
        handler_threads: 4,
        max_frame,
        read_timeout: Duration::from_millis(50),
        service: temporal_mining::serve::ServiceConfig {
            workers: 1,
            ..Default::default()
        },
        tenants: vec![TenantConfig::new("acme", "key-a").quota(4)],
        ..Default::default()
    })
    .unwrap()
}

/// Polls the idle-accounting gauges back to zero; panics if a handler or
/// quota slot leaked.
fn assert_drains_to_idle(server: &Server) {
    let start = Instant::now();
    while server.active_connections() != 0 || server.tenant_in_flight() != 0 {
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "leaked: {} active connections, {} quota slots",
            server.active_connections(),
            server.tenant_in_flight()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// The liveness probe: a fresh well-formed request must still be served.
fn assert_still_serving(server: &Server) {
    let mut client = Client::connect(server.addr()).unwrap();
    let reply = client.call(&stats_request("acme", "key-a")).unwrap();
    assert_eq!(reply.get("type").and_then(Value::as_str), Some("stats"));
}

#[test]
fn malformed_json_gets_a_typed_error_and_the_connection_survives() {
    let server = test_server(1 << 16);
    let mut client = Client::connect(server.addr()).unwrap();
    for bad in [
        &b"{\"type\":\"mine\""[..],
        b"not json at all",
        b"",
        b"[1,2,",
        b"\xff\xfe\x00garbage",
        b"{\"type\":42}",
    ] {
        let reply = client.call_bytes(bad).unwrap();
        assert_eq!(
            reply.get("type").and_then(Value::as_str),
            Some("error"),
            "payload {bad:?}"
        );
        assert_eq!(
            reply.get("code").and_then(Value::as_str),
            Some("bad_request"),
            "payload {bad:?}"
        );
    }
    // The same connection still serves real requests afterwards.
    let reply = client
        .call(&mine_request(
            "acme",
            "key-a",
            &"ABCA".repeat(40),
            0.05,
            Some(2),
            None,
            None,
            None,
        ))
        .unwrap();
    assert_eq!(
        reply.get("type").and_then(Value::as_str),
        Some("mine_result")
    );
    drop(client);
    assert_drains_to_idle(&server);
    assert!(server.counters().protocol_errors >= 6);
    server.shutdown();
}

#[test]
fn unknown_types_bad_keys_and_missing_fields_are_typed_errors() {
    let server = test_server(1 << 16);
    let mut client = Client::connect(server.addr()).unwrap();
    let cases: [(&str, &str); 6] = [
        (
            r#"{"type":"divine","tenant":"acme","api_key":"key-a"}"#,
            "bad_request",
        ),
        (
            r#"{"type":"mine","tenant":"acme","api_key":"wrong"}"#,
            "unauthorized",
        ),
        (
            r#"{"type":"mine","tenant":"ghost","api_key":"key-a"}"#,
            "unauthorized",
        ),
        (r#"{"type":"mine","tenant":"acme"}"#, "bad_request"),
        (
            r#"{"type":"mine","tenant":"acme","api_key":"key-a"}"#,
            "bad_request", // neither events nor workload
        ),
        (
            r#"{"type":"mine","tenant":"acme","api_key":"key-a","events":"ABAB","backend":"quantum"}"#,
            "bad_request",
        ),
    ];
    for (request, want_code) in cases {
        let reply = client.call_bytes(request.as_bytes()).unwrap();
        assert_eq!(
            reply.get("code").and_then(Value::as_str),
            Some(want_code),
            "request {request}"
        );
    }
    // Bad-key and unknown-tenant responses are indistinguishable.
    let bad_key = client
        .call_bytes(br#"{"type":"mine","tenant":"acme","api_key":"wrong"}"#)
        .unwrap();
    let bad_tenant = client
        .call_bytes(br#"{"type":"mine","tenant":"ghost","api_key":"x"}"#)
        .unwrap();
    assert_eq!(bad_key.get("message"), bad_tenant.get("message"));
    drop(client);
    assert_drains_to_idle(&server);
    server.shutdown();
}

#[test]
fn oversized_length_prefix_is_refused_with_a_typed_error_then_closed() {
    let server = test_server(4096);
    let mut client = Client::connect(server.addr()).unwrap();
    // A prefix declaring far more than the cap; no payload follows.
    client.send_raw(&u32::MAX.to_be_bytes()).unwrap();
    let reply = client.read_reply().unwrap();
    assert_eq!(
        reply.get("code").and_then(Value::as_str),
        Some("oversized_frame")
    );
    // The server closes the connection after the refusal.
    match client.read_reply() {
        Err(tdm_server::ClientError::Frame(tdm_server::FrameError::Closed)) => {}
        other => panic!("expected a clean close, got {other:?}"),
    }
    assert_drains_to_idle(&server);
    assert_still_serving(&server);
    server.shutdown();
}

#[test]
fn truncated_frames_close_cleanly_without_leaking_handlers() {
    let server = test_server(4096);
    // Truncated payload: promise 100 bytes, send 10, walk away.
    let mut client = Client::connect(server.addr()).unwrap();
    client.send_raw(&100u32.to_be_bytes()).unwrap();
    client.send_raw(b"0123456789").unwrap();
    client.finish().unwrap();
    // Truncated prefix: 2 of 4 length bytes.
    let mut client = Client::connect(server.addr()).unwrap();
    client.send_raw(&[0u8, 1]).unwrap();
    client.finish().unwrap();
    // Idle connect-then-leave.
    let client = Client::connect(server.addr()).unwrap();
    drop(client);
    assert_drains_to_idle(&server);
    assert_still_serving(&server);
    server.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary byte soup — framed or raw — never kills the server: after
    /// every stream it still answers a well-formed request, and the handler
    /// accounting returns to idle.
    #[test]
    fn random_byte_streams_never_panic_the_server(
        bytes in proptest::collection::vec(0u8..=255, 0..256),
        framed in 0u8..=1,
    ) {
        // One server per case keeps the leak assertion exact (gauges at 0).
        let server = test_server(4096);
        let mut client = Client::connect(server.addr()).unwrap();
        if framed == 1 {
            // A well-formed frame around hostile payload bytes.
            let _ = client.call_bytes(&bytes);
            drop(client);
        } else {
            // Hostile at the framing layer itself. The write may race a
            // server-side close (e.g. the first 4 bytes decode as an
            // oversized prefix), so tolerate EPIPE.
            let _ = client.send_raw(&bytes);
            let _ = client.finish();
        }
        assert_drains_to_idle(&server);
        assert_still_serving(&server);
        server.shutdown();
    }
}
