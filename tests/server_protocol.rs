//! Protocol-robustness suite: the server must survive hostile clients.
//!
//! Malformed JSON, truncated frames, oversized length prefixes, unknown
//! request types, bad API keys, and fully random byte streams — the server
//! never panics, always answers a typed error or closes cleanly, and leaks
//! no handler threads (active-connection and quota accounting return to
//! idle after every abuse).

use std::sync::Arc;
use std::time::{Duration, Instant};

use proptest::prelude::*;
use tdm_server::client::{mine_request, stats_request};
use tdm_server::json::Value;
use tdm_server::{Client, Server, ServerConfig, TenantConfig};
use temporal_mining::prelude::*;

fn test_server(max_frame: usize) -> Server {
    Server::bind(ServerConfig {
        handler_threads: 4,
        max_frame,
        read_timeout: Duration::from_millis(50),
        service: temporal_mining::serve::ServiceConfig {
            workers: 1,
            ..Default::default()
        },
        tenants: vec![TenantConfig::new("acme", "key-a").quota(4)],
        ..Default::default()
    })
    .unwrap()
}

/// Polls the idle-accounting gauges back to zero; panics if a handler or
/// quota slot leaked.
fn assert_drains_to_idle(server: &Server) {
    let start = Instant::now();
    while server.active_connections() != 0 || server.tenant_in_flight() != 0 {
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "leaked: {} active connections, {} quota slots",
            server.active_connections(),
            server.tenant_in_flight()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// The liveness probe: a fresh well-formed request must still be served.
fn assert_still_serving(server: &Server) {
    let mut client = Client::connect(server.addr()).unwrap();
    let reply = client.call(&stats_request("acme", "key-a")).unwrap();
    assert_eq!(reply.get("type").and_then(Value::as_str), Some("stats"));
}

#[test]
fn malformed_json_gets_a_typed_error_and_the_connection_survives() {
    let server = test_server(1 << 16);
    let mut client = Client::connect(server.addr()).unwrap();
    for bad in [
        &b"{\"type\":\"mine\""[..],
        b"not json at all",
        b"",
        b"[1,2,",
        b"\xff\xfe\x00garbage",
        b"{\"type\":42}",
    ] {
        let reply = client.call_bytes(bad).unwrap();
        assert_eq!(
            reply.get("type").and_then(Value::as_str),
            Some("error"),
            "payload {bad:?}"
        );
        assert_eq!(
            reply.get("code").and_then(Value::as_str),
            Some("bad_request"),
            "payload {bad:?}"
        );
    }
    // The same connection still serves real requests afterwards.
    let reply = client
        .call(&mine_request(
            "acme",
            "key-a",
            &"ABCA".repeat(40),
            0.05,
            Some(2),
            None,
            None,
            None,
        ))
        .unwrap();
    assert_eq!(
        reply.get("type").and_then(Value::as_str),
        Some("mine_result")
    );
    drop(client);
    assert_drains_to_idle(&server);
    assert!(server.counters().protocol_errors >= 6);
    server.shutdown();
}

#[test]
fn unknown_types_bad_keys_and_missing_fields_are_typed_errors() {
    let server = test_server(1 << 16);
    let mut client = Client::connect(server.addr()).unwrap();
    let cases: [(&str, &str); 6] = [
        (
            r#"{"type":"divine","tenant":"acme","api_key":"key-a"}"#,
            "bad_request",
        ),
        (
            r#"{"type":"mine","tenant":"acme","api_key":"wrong"}"#,
            "unauthorized",
        ),
        (
            r#"{"type":"mine","tenant":"ghost","api_key":"key-a"}"#,
            "unauthorized",
        ),
        (r#"{"type":"mine","tenant":"acme"}"#, "bad_request"),
        (
            r#"{"type":"mine","tenant":"acme","api_key":"key-a"}"#,
            "bad_request", // neither events nor workload
        ),
        (
            r#"{"type":"mine","tenant":"acme","api_key":"key-a","events":"ABAB","backend":"quantum"}"#,
            "bad_request",
        ),
    ];
    for (request, want_code) in cases {
        let reply = client.call_bytes(request.as_bytes()).unwrap();
        assert_eq!(
            reply.get("code").and_then(Value::as_str),
            Some(want_code),
            "request {request}"
        );
    }
    // Bad-key and unknown-tenant responses are indistinguishable.
    let bad_key = client
        .call_bytes(br#"{"type":"mine","tenant":"acme","api_key":"wrong"}"#)
        .unwrap();
    let bad_tenant = client
        .call_bytes(br#"{"type":"mine","tenant":"ghost","api_key":"x"}"#)
        .unwrap();
    assert_eq!(bad_key.get("message"), bad_tenant.get("message"));
    drop(client);
    assert_drains_to_idle(&server);
    server.shutdown();
}

#[test]
fn oversized_length_prefix_is_refused_with_a_typed_error_then_closed() {
    let server = test_server(4096);
    let mut client = Client::connect(server.addr()).unwrap();
    // A prefix declaring far more than the cap; no payload follows.
    client.send_raw(&u32::MAX.to_be_bytes()).unwrap();
    let reply = client.read_reply().unwrap();
    assert_eq!(
        reply.get("code").and_then(Value::as_str),
        Some("oversized_frame")
    );
    // The server closes the connection after the refusal.
    match client.read_reply() {
        Err(tdm_server::ClientError::Frame(tdm_server::FrameError::Closed)) => {}
        other => panic!("expected a clean close, got {other:?}"),
    }
    assert_drains_to_idle(&server);
    assert_still_serving(&server);
    server.shutdown();
}

#[test]
fn truncated_frames_close_cleanly_without_leaking_handlers() {
    let server = test_server(4096);
    // Truncated payload: promise 100 bytes, send 10, walk away.
    let mut client = Client::connect(server.addr()).unwrap();
    client.send_raw(&100u32.to_be_bytes()).unwrap();
    client.send_raw(b"0123456789").unwrap();
    client.finish().unwrap();
    // Truncated prefix: 2 of 4 length bytes.
    let mut client = Client::connect(server.addr()).unwrap();
    client.send_raw(&[0u8, 1]).unwrap();
    client.finish().unwrap();
    // Idle connect-then-leave.
    let client = Client::connect(server.addr()).unwrap();
    drop(client);
    assert_drains_to_idle(&server);
    assert_still_serving(&server);
    server.shutdown();
}

#[test]
fn absurd_workload_parameters_are_typed_errors_not_allocations_or_panics() {
    let server = test_server(1 << 16);
    let mut client = Client::connect(server.addr()).unwrap();
    let cases = [
        // A petabyte-scale "n" must be refused before any allocation.
        r#"{"type":"mine","tenant":"acme","api_key":"key-a","workload":{"kind":"uniform","n":1000000000000000}}"#,
        r#"{"type":"mine","tenant":"acme","api_key":"key-a","workload":{"kind":"markov","n":1000000000000000}}"#,
        // Generator preconditions come back as errors, not asserts that
        // drop the connection without a response.
        r#"{"type":"mine","tenant":"acme","api_key":"key-a","workload":{"kind":"paper","scale":0}}"#,
        r#"{"type":"mine","tenant":"acme","api_key":"key-a","workload":{"kind":"paper","scale":-1}}"#,
        r#"{"type":"mine","tenant":"acme","api_key":"key-a","workload":{"kind":"paper","scale":2}}"#,
        r#"{"type":"mine","tenant":"acme","api_key":"key-a","workload":{"kind":"markov","n":100,"persistence":1}}"#,
        r#"{"type":"mine","tenant":"acme","api_key":"key-a","workload":{"kind":"markov","n":100,"persistence":-0.5}}"#,
    ];
    for request in cases {
        let reply = client.call_bytes(request.as_bytes()).unwrap();
        assert_eq!(
            reply.get("code").and_then(Value::as_str),
            Some("bad_request"),
            "request {request}: {}",
            reply.encode()
        );
    }
    // A sane workload on the same connection still mines.
    let reply = client
        .call_bytes(
            br#"{"type":"mine","tenant":"acme","api_key":"key-a","max_level":2,"workload":{"kind":"markov","n":2000,"persistence":0.6}}"#,
        )
        .unwrap();
    assert_eq!(
        reply.get("type").and_then(Value::as_str),
        Some("mine_result"),
        "{}",
        reply.encode()
    );
    drop(client);
    assert_drains_to_idle(&server);
    server.shutdown();
}

/// Dawdles through each level so a request reliably pins its tenant's
/// in-flight quota slot for an observable window.
struct Dawdler {
    delay: Duration,
}

impl Executor for Dawdler {
    fn execute(&mut self, req: &CountRequest<'_>) -> Result<Counts, BackendError> {
        std::thread::sleep(self.delay);
        let mut scratch = CountScratch::new();
        Ok(req.compiled().count(req.stream(), &mut scratch))
    }
    fn name(&self) -> &str {
        "dawdler"
    }
}

#[test]
fn quota_refusals_do_not_burn_rate_limit_tokens_and_register_is_metered() {
    // Burst of 2 tokens with a negligible refill rate, quota of 1: the
    // blocker spends token #1 and holds the only slot. Every refusal while
    // it runs must be a quota error that consumes nothing, leaving token #2
    // for the request that lands once the slot frees up.
    let server = Server::bind(ServerConfig {
        handler_threads: 4,
        read_timeout: Duration::from_millis(50),
        service: temporal_mining::serve::ServiceConfig {
            workers: 1,
            ..Default::default()
        },
        tenants: vec![TenantConfig::new("acme", "key-a").rate(0.001, 2.0).quota(1)],
        executor_factory: Some(Arc::new(|| {
            Box::new(Dawdler {
                delay: Duration::from_millis(150),
            })
        })),
        ..Default::default()
    })
    .unwrap();
    let addr = server.addr();

    let events = "ABCA".repeat(500);
    std::thread::scope(|s| {
        let blocker_events = events.clone();
        let blocker = s.spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            client
                .call(&mine_request(
                    "acme",
                    "key-a",
                    &blocker_events,
                    0.01,
                    Some(3),
                    None,
                    None,
                    None,
                ))
                .unwrap()
        });
        let start = Instant::now();
        while server.tenant_in_flight() == 0 {
            assert!(
                start.elapsed() < Duration::from_secs(10),
                "blocker never took its quota slot"
            );
            std::thread::yield_now();
        }

        // Four refusals back to back: all must say "quota", never
        // "rate_limited" — with the old token-first ordering the second
        // refusal would burn the last token and the rest would flip to
        // rate-limit errors.
        let mut client = Client::connect(addr).unwrap();
        for attempt in 0..4 {
            let denied = client
                .call(&mine_request(
                    "acme",
                    "key-a",
                    &events,
                    0.05,
                    Some(1),
                    None,
                    None,
                    None,
                ))
                .unwrap();
            assert_eq!(
                denied.get("code").and_then(Value::as_str),
                Some("quota"),
                "attempt {attempt}: {}",
                denied.encode()
            );
        }
        assert_eq!(
            blocker.join().unwrap().get("type").and_then(Value::as_str),
            Some("mine_result")
        );

        // The refusals consumed nothing: token #2 still serves a request.
        let served = client
            .call(&mine_request(
                "acme",
                "key-a",
                &events,
                0.01,
                Some(3),
                None,
                None,
                None,
            ))
            .unwrap();
        assert_eq!(
            served.get("type").and_then(Value::as_str),
            Some("mine_result"),
            "quota refusals burned the remaining token: {}",
            served.encode()
        );

        // The bucket is now empty, and `register` is metered like `ingest`:
        // it answers rate_limited instead of mutating shared state for free.
        let denied = client
            .call_bytes(
                br#"{"type":"register","tenant":"acme","api_key":"key-a","stream":"s","seed":"ABAB"}"#,
            )
            .unwrap();
        assert_eq!(
            denied.get("code").and_then(Value::as_str),
            Some("rate_limited"),
            "{}",
            denied.encode()
        );
    });
    assert_drains_to_idle(&server);
    server.shutdown();
}

#[test]
fn shutdown_unblocks_an_acceptor_bound_to_the_unspecified_address() {
    // Binding to 0.0.0.0 means the wake-up connection cannot target the
    // bound address literally on every platform; shutdown must aim at
    // loopback instead of wedging in accept().
    let server = Server::bind(ServerConfig {
        addr: "0.0.0.0:0".into(),
        tenants: vec![TenantConfig::new("acme", "key-a")],
        ..Default::default()
    })
    .unwrap();
    let done = std::thread::spawn(move || server.shutdown());
    let start = Instant::now();
    while !done.is_finished() {
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "shutdown wedged joining the acceptor of a 0.0.0.0 listener"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    done.join().unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary byte soup — framed or raw — never kills the server: after
    /// every stream it still answers a well-formed request, and the handler
    /// accounting returns to idle.
    #[test]
    fn random_byte_streams_never_panic_the_server(
        bytes in proptest::collection::vec(0u8..=255, 0..256),
        framed in 0u8..=1,
    ) {
        // One server per case keeps the leak assertion exact (gauges at 0).
        let server = test_server(4096);
        let mut client = Client::connect(server.addr()).unwrap();
        if framed == 1 {
            // A well-formed frame around hostile payload bytes.
            let _ = client.call_bytes(&bytes);
            drop(client);
        } else {
            // Hostile at the framing layer itself. The write may race a
            // server-side close (e.g. the first 4 bytes decode as an
            // oversized prefix), so tolerate EPIPE.
            let _ = client.send_raw(&bytes);
            let _ = client.finish();
        }
        assert_drains_to_idle(&server);
        assert_still_serving(&server);
        server.shutdown();
    }
}
