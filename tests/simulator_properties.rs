//! Property-based tests of the simulator's invariants: occupancy and timing
//! must respond monotonically to resources, work, and hardware strength, for
//! *any* kernel in the valid launch space — not just the mining kernels.

use gpu_sim::{
    occupancy, simulate, BlockProfile, CostModel, DeviceConfig, KernelResources, KernelSpec,
    LaunchConfig, MemKind, MemTraffic, Phase,
};
use proptest::prelude::*;

fn compute_spec(blocks: u32, tpb: u32, instr_per_warp: u64) -> KernelSpec {
    let warps = tpb.div_ceil(32);
    KernelSpec {
        launch: LaunchConfig {
            blocks,
            threads_per_block: tpb,
        },
        resources: KernelResources::new(tpb),
        profile: BlockProfile {
            phases: vec![Phase {
                label: "compute",
                warp_instructions: instr_per_warp * warps as u64,
                chain_instructions: instr_per_warp,
                mem: None,
                barriers: 0,
            }],
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// More registers per thread never increases the number of resident blocks.
    #[test]
    fn occupancy_monotone_in_registers(
        tpb in 1u32..=512,
        regs_lo in 1u32..=32,
        extra in 0u32..=32,
    ) {
        let dev = DeviceConfig::geforce_gtx_280();
        let lo = occupancy(&dev, &KernelResources::new(tpb).with_registers(regs_lo));
        let hi = occupancy(&dev, &KernelResources::new(tpb).with_registers(regs_lo + extra));
        match (lo, hi) {
            (Some(a), Some(b)) => prop_assert!(b.active_blocks <= a.active_blocks),
            (None, Some(_)) => prop_assert!(false, "more registers cannot make a kernel fit"),
            _ => {}
        }
    }

    /// More shared memory per block never increases residency.
    #[test]
    fn occupancy_monotone_in_shared_mem(
        tpb in 1u32..=512,
        smem_lo in 0u32..=8192,
        extra in 0u32..=8192,
    ) {
        let dev = DeviceConfig::geforce_8800_gts_512();
        let lo = occupancy(&dev, &KernelResources::new(tpb).with_shared_mem(smem_lo));
        let hi = occupancy(&dev, &KernelResources::new(tpb).with_shared_mem(smem_lo + extra));
        match (lo, hi) {
            (Some(a), Some(b)) => prop_assert!(b.active_blocks <= a.active_blocks),
            (None, Some(_)) => prop_assert!(false, "more shared memory cannot make a kernel fit"),
            _ => {}
        }
    }

    /// Active warps never exceed the device ceiling; occupancy fraction is in
    /// (0, 1].
    #[test]
    fn occupancy_respects_ceilings(tpb in 1u32..=512, regs in 1u32..=64, smem in 0u32..=16384) {
        for dev in DeviceConfig::paper_testbed() {
            if let Some(occ) = occupancy(
                &dev,
                &KernelResources::new(tpb).with_registers(regs).with_shared_mem(smem),
            ) {
                prop_assert!(occ.active_warps <= dev.max_warps_per_sm);
                prop_assert!(occ.active_threads <= dev.max_threads_per_sm);
                prop_assert!(occ.active_blocks <= dev.max_blocks_per_sm);
                prop_assert!(occ.occupancy_fraction > 0.0 && occ.occupancy_fraction <= 1.0);
                let regs_used = occ.active_blocks
                    * tpb.div_ceil(32) * 32 * regs;
                prop_assert!(regs_used <= dev.registers_per_sm);
            }
        }
    }

    /// Simulated time grows (weakly) with per-warp work and with block count.
    #[test]
    fn time_monotone_in_work_and_blocks(
        blocks in 1u32..=2000,
        tpb in prop::sample::select(vec![16u32, 32, 64, 128, 256, 512]),
        instr in 1000u64..=100_000,
    ) {
        let dev = DeviceConfig::geforce_gtx_280();
        let cost = CostModel::default();
        let base = simulate(&dev, &cost, &compute_spec(blocks, tpb, instr)).unwrap();
        let more_work = simulate(&dev, &cost, &compute_spec(blocks, tpb, instr * 2)).unwrap();
        let more_blocks = simulate(&dev, &cost, &compute_spec(blocks * 2, tpb, instr)).unwrap();
        prop_assert!(more_work.cycles >= base.cycles);
        prop_assert!(more_blocks.cycles >= base.cycles);
    }

    /// A strictly better card (more SMs, same everything else) is never slower
    /// on a pure-compute kernel.
    #[test]
    fn more_sms_never_hurt(
        blocks in 1u32..=1000,
        instr in 1000u64..=50_000,
    ) {
        let cost = CostModel::default();
        let small = DeviceConfig::geforce_gtx_280();
        let mut big = small.clone();
        big.sm_count *= 2;
        let spec = compute_spec(blocks, 128, instr);
        let t_small = simulate(&small, &cost, &spec).unwrap();
        let t_big = simulate(&big, &cost, &spec).unwrap();
        prop_assert!(t_big.cycles <= t_small.cycles + 1.0);
    }

    /// Texture traffic respects conservation: hits + misses = accesses, and
    /// DRAM bytes = misses x line size.
    #[test]
    fn texture_counter_conservation(
        blocks in 1u32..=500,
        tpb in prop::sample::select(vec![32u32, 128, 512]),
        kb in 1u64..=200,
    ) {
        let n = kb * 1024;
        let warps = tpb.div_ceil(32) as u64;
        let spec = KernelSpec {
            launch: LaunchConfig { blocks, threads_per_block: tpb },
            resources: KernelResources::new(tpb),
            profile: BlockProfile {
                phases: vec![Phase {
                    label: "scan",
                    warp_instructions: (n / 32) * 8,
                    chain_instructions: (n / tpb as u64) * 8,
                    mem: Some(MemTraffic {
                        kind: MemKind::Texture {
                            streams_per_block: tpb,
                            unique_bytes: n,
                            shared_across_blocks: true,
                        },
                        requests: (n / 32) * warps,
                        chain: n / tpb as u64,
                        touched_bytes: n,
                    }),
                    barriers: 0,
                }],
            },
        };
        let dev = DeviceConfig::geforce_gtx_280();
        let rep = simulate(&dev, &CostModel::default(), &spec).unwrap();
        prop_assert_eq!(rep.counters.tex_hits + rep.counters.tex_misses, rep.counters.tex_accesses);
        prop_assert_eq!(rep.counters.dram_bytes, rep.counters.tex_misses * 32);
        let hr = rep.counters.tex_hit_rate();
        prop_assert!((0.0..=1.0).contains(&hr));
    }

    /// Ablations only ever make kernels faster-or-equal in the dimension they
    /// remove (no accidental coupling).
    #[test]
    fn ablations_are_one_sided(
        blocks in 1u32..=300,
        kb in 10u64..=100,
    ) {
        let n = kb * 1024;
        let tpb = 256u32;
        let warps = tpb.div_ceil(32) as u64;
        let spec = KernelSpec {
            launch: LaunchConfig { blocks, threads_per_block: tpb },
            resources: KernelResources::new(tpb),
            profile: BlockProfile {
                phases: vec![Phase {
                    label: "scan",
                    warp_instructions: (n / 32) * 8,
                    chain_instructions: (n / tpb as u64) * 8,
                    mem: Some(MemTraffic {
                        kind: MemKind::Texture {
                            streams_per_block: tpb,
                            unique_bytes: n,
                            shared_across_blocks: true,
                        },
                        requests: (n / 32) * warps,
                        chain: n / tpb as u64,
                        touched_bytes: n,
                    }),
                    barriers: 0,
                }],
            },
        };
        let dev = DeviceConfig::geforce_8800_gts_512();
        let on = simulate(&dev, &CostModel::default(), &spec).unwrap();
        let no_cache = simulate(&dev, &CostModel::without_texture_cache(), &spec).unwrap();
        let no_hiding = simulate(&dev, &CostModel::without_latency_hiding(), &spec).unwrap();
        prop_assert!(no_cache.cycles <= on.cycles + 1.0);
        prop_assert!(no_hiding.cycles >= on.cycles - 1.0);
    }
}
