//! Integration test: every simulated GPU kernel produces exactly the counts of
//! the sequential CPU reference, across workload families, cards, and block
//! sizes — the correctness half of the reproduction (the paper's kernels must
//! agree with GMiner-class CPU mining).

use temporal_mining::core::candidate::permutations;
use temporal_mining::core::count::count_episodes_naive;
use temporal_mining::prelude::*;
use temporal_mining::workloads::{
    markov_letters, paper_database_scaled, planted, spike_trains, uniform_letters, SpikeTrainConfig,
};

fn check_all_kernels(db: &EventDb, episodes: &[Episode], tpb: u32, card: &DeviceConfig) {
    let reference = count_episodes_naive(db, episodes);
    for algo in Algorithm::ALL {
        let problem = MiningProblem::new(db, episodes);
        let run = problem
            .run(
                algo,
                tpb,
                card,
                &CostModel::default(),
                &SimOptions::default(),
            )
            .unwrap_or_else(|e| panic!("{algo} failed to launch: {e}"));
        assert_eq!(
            run.counts, reference,
            "{algo} at tpb={tpb} on {} disagrees with the sequential reference",
            card.name
        );
        assert!(run.report.time_ms > 0.0);
    }
}

#[test]
fn kernels_match_reference_on_uniform_text() {
    let db = uniform_letters(30_000, 42);
    let episodes = permutations(db.alphabet(), 2);
    for card in DeviceConfig::paper_testbed() {
        check_all_kernels(&db, &episodes, 128, &card);
    }
}

#[test]
fn kernels_match_reference_across_block_sizes() {
    let db = uniform_letters(20_000, 43);
    let episodes = permutations(db.alphabet(), 1);
    let card = DeviceConfig::geforce_gtx_280();
    for tpb in [16u32, 32, 96, 256, 512] {
        check_all_kernels(&db, &episodes, tpb, &card);
    }
}

#[test]
fn kernels_match_reference_on_bursty_text() {
    // Markov streams stress the restart path (runs of identical letters).
    let db = markov_letters(25_000, 44, 0.7);
    let episodes = permutations(db.alphabet(), 2);
    check_all_kernels(&db, &episodes, 64, &DeviceConfig::geforce_8800_gts_512());
}

#[test]
fn kernels_find_planted_episodes() {
    let ab = Alphabet::latin26();
    let secret = Episode::from_str(&ab, "XQZ").unwrap();
    let (db, starts) = planted(40_000, 45, &secret, 200);
    assert!(!starts.is_empty());
    let episodes = vec![secret.clone()];
    let reference = count_episodes_naive(&db, &episodes);
    assert!(reference[0] > 0);
    for algo in Algorithm::ALL {
        let problem = MiningProblem::new(&db, &episodes);
        let run = problem
            .run(
                algo,
                256,
                &DeviceConfig::geforce_gtx_280(),
                &CostModel::default(),
                &SimOptions::default(),
            )
            .unwrap();
        assert_eq!(run.counts, reference, "{algo}");
    }
}

#[test]
fn exact_mode_counts_are_identical_to_sampled() {
    // Sampling approximates *timing*, never counts.
    let db = uniform_letters(10_000, 46);
    let episodes = permutations(db.alphabet(), 2);
    let card = DeviceConfig::geforce_gtx_280();
    for algo in Algorithm::ALL {
        let p1 = MiningProblem::new(&db, &episodes);
        let p2 = MiningProblem::new(&db, &episodes);
        let sampled = p1
            .run(
                algo,
                128,
                &card,
                &CostModel::default(),
                &SimOptions::default(),
            )
            .unwrap();
        let exact = p2
            .run(
                algo,
                128,
                &card,
                &CostModel::default(),
                &SimOptions {
                    exact: true,
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(sampled.counts, exact.counts, "{algo}");
    }
}

/// The full equivalence grid: all 4 algorithms × 2 block sizes × 2 workload
/// families (the scaled paper database and a neuronal spike train), every cell
/// asserted equal to the `SerialScanBackend` CPU ground truth.
#[test]
fn full_grid_matches_serial_scan_backend() {
    let paper = paper_database_scaled(0.05);
    let spikes = spike_trains(&SpikeTrainConfig {
        duration_ms: 20_000.0,
        seed: 48,
        ..Default::default()
    });
    let card = DeviceConfig::geforce_gtx_280();
    for (workload, db) in [("paper-scaled", &paper), ("spike-train", &spikes)] {
        let episodes = permutations(db.alphabet(), 2);
        let reference = MiningSession::builder(db)
            .build()
            .count_candidates(&episodes, &mut SerialScanBackend)
            .unwrap();
        for algo in Algorithm::ALL {
            for tpb in [64u32, 256] {
                let problem = MiningProblem::new(db, &episodes);
                let run = problem
                    .run(
                        algo,
                        tpb,
                        &card,
                        &CostModel::default(),
                        &SimOptions::default(),
                    )
                    .unwrap_or_else(|e| panic!("{workload}/{algo}/tpb={tpb}: {e}"));
                assert_eq!(
                    run.counts, reference,
                    "{workload}: {algo} at tpb={tpb} disagrees with SerialScanBackend"
                );
                assert!(run.report.time_ms > 0.0, "{workload}/{algo}/tpb={tpb}");
            }
        }
    }
}

#[test]
fn oversized_blocks_are_rejected_cleanly() {
    let db = uniform_letters(1_000, 47);
    let episodes = permutations(db.alphabet(), 1);
    let problem = MiningProblem::new(&db, &episodes);
    let err = problem
        .run(
            Algorithm::ThreadTexture,
            1024,
            &DeviceConfig::geforce_gtx_280(),
            &CostModel::default(),
            &SimOptions::default(),
        )
        .unwrap_err();
    assert!(matches!(
        err,
        temporal_mining::sim::SimError::BlockTooLarge {
            requested: 1024,
            ..
        }
    ));
}
