//! Property tests of counting-semantics invariants that hold for *any* input —
//! the mathematical guard rails of the mining core.

use proptest::prelude::*;
use temporal_mining::core::count::count_episode;
use temporal_mining::core::expiry::count_with_expiry;
use temporal_mining::core::segment::{count_segmented, count_segmented_exact, even_bounds};
use temporal_mining::core::semantics::{count_distinct_starts, count_non_overlapping};
use temporal_mining::core::{Alphabet, Episode, EventDb};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every completion consumes one occurrence of each episode item, so the
    /// count is bounded by the scarcest item (and by n / L).
    #[test]
    fn count_bounded_by_scarcest_item(
        data in proptest::collection::vec(0u8..6, 0..500),
        items in proptest::collection::vec(0u8..6, 1..5),
    ) {
        let ab = Alphabet::numbered(6).unwrap();
        let db = EventDb::new(ab, data).unwrap();
        let ep = Episode::new(items.clone()).unwrap();
        let count = count_episode(&db, &ep);
        let hist = db.histogram();
        // Each item of the episode must appear `count * multiplicity` times.
        let mut need = [0u64; 6];
        for &i in &items {
            need[i as usize] += 1;
        }
        for (i, &mult) in need.iter().enumerate() {
            if mult > 0 {
                prop_assert!(count * mult <= hist[i],
                    "item {i}: count {count} x {mult} > {}", hist[i]);
            }
        }
        prop_assert!(count <= db.len() as u64 / items.len() as u64 + 1);
    }

    /// The FSM count never exceeds the non-overlapping subsequence count (the
    /// FSM only adds reset conditions) nor the distinct-starts count.
    #[test]
    fn fsm_is_the_strictest_semantics(
        data in proptest::collection::vec(0u8..5, 0..400),
        items_seed in proptest::collection::vec(0u8..5, 1..4),
    ) {
        // Distinct items (the paper's candidate space).
        let mut items = items_seed;
        items.sort_unstable();
        items.dedup();
        let ab = Alphabet::numbered(5).unwrap();
        let db = EventDb::new(ab, data).unwrap();
        let ep = Episode::new(items).unwrap();
        let fsm = count_episode(&db, &ep);
        let non_overlap = count_non_overlapping(db.symbols(), ep.items());
        let starts = count_distinct_starts(db.symbols(), ep.items());
        prop_assert!(fsm <= non_overlap, "fsm {fsm} > non-overlapping {non_overlap}");
        prop_assert!(fsm <= starts, "fsm {fsm} > starts {starts}");
    }

    /// An unbounded expiry window reduces to the plain FSM, and shrinking the
    /// window never increases the count (monotonicity).
    #[test]
    fn expiry_is_monotone_in_the_window(
        data in proptest::collection::vec(0u8..5, 1..300),
        gaps in proptest::collection::vec(1u64..20, 1..300),
        items in proptest::collection::vec(0u8..5, 1..4),
    ) {
        let n = data.len().min(gaps.len());
        let data = &data[..n];
        let mut t = 0u64;
        let times: Vec<u64> = gaps[..n].iter().map(|g| { t += g; t }).collect();
        let ab = Alphabet::numbered(5).unwrap();
        let db = EventDb::with_times(ab.clone(), data.to_vec(), times).unwrap();
        let ep = Episode::new(items).unwrap();

        let plain = {
            let plain_db = EventDb::new(ab, data.to_vec()).unwrap();
            count_episode(&plain_db, &ep)
        };
        let unbounded = count_with_expiry(&db, &ep, u64::MAX).unwrap();
        prop_assert_eq!(unbounded, plain);

        let mut last = u64::MAX;
        for window in [1000u64, 100, 10, 1] {
            let c = count_with_expiry(&db, &ep, window).unwrap();
            prop_assert!(c <= last.min(plain), "window {window}: {c} > min({last}, {plain})");
            last = c;
        }
    }

    /// Concatenating two databases never loses completions that are wholly
    /// inside either half (super-additivity up to one boundary match).
    #[test]
    fn concatenation_superadditive(
        left in proptest::collection::vec(0u8..4, 0..200),
        right in proptest::collection::vec(0u8..4, 0..200),
        items_seed in proptest::collection::vec(0u8..4, 1..4),
    ) {
        let mut items = items_seed;
        items.sort_unstable();
        items.dedup();
        let ab = Alphabet::numbered(4).unwrap();
        let ep = Episode::new(items).unwrap();
        let db_l = EventDb::new(ab.clone(), left.clone()).unwrap();
        let db_r = EventDb::new(ab.clone(), right.clone()).unwrap();
        let mut both = left;
        both.extend_from_slice(&right);
        let db = EventDb::new(ab, both).unwrap();
        let whole = count_episode(&db, &ep);
        let parts = count_episode(&db_l, &ep) + count_episode(&db_r, &ep);
        // The whole can only gain (spanning matches) relative to the parts,
        // except that a partial match at the seam can consume the right half's
        // first anchor — bounded by 1 for distinct-item episodes.
        prop_assert!(whole + 1 >= parts, "whole {whole} vs parts {parts}");
    }

    /// Reversing both the database and the episode preserves nothing in
    /// general, but a palindromic single-item episode count is invariant.
    #[test]
    fn single_item_count_is_reversal_invariant(
        data in proptest::collection::vec(0u8..6, 0..300),
        item in 0u8..6,
    ) {
        let ab = Alphabet::numbered(6).unwrap();
        let ep = Episode::new(vec![item]).unwrap();
        let fwd = count_episode(&EventDb::new(ab.clone(), data.clone()).unwrap(), &ep);
        let mut rev = data;
        rev.reverse();
        let bwd = count_episode(&EventDb::new(ab, rev).unwrap(), &ep);
        prop_assert_eq!(fwd, bwd);
    }

    /// Segmented counting with boundary continuation (the paper's Fig. 5 span
    /// handling, what the block-level kernels compute) equals the sequential
    /// FSM count for distinct-item episodes of lengths 1–4 under ANY
    /// segmentation of ANY database.
    #[test]
    fn segmented_continuation_equals_sequential(
        data in proptest::collection::vec(0u8..8, 1..400),
        cuts in proptest::collection::vec(0usize..400, 0..10),
        len in 1usize..5,
    ) {
        let ab = Alphabet::numbered(8).unwrap();
        let n = data.len();
        let db = EventDb::new(ab, data).unwrap();
        // Episode items 0..len are distinct by construction (lengths 1..=4).
        let ep = Episode::new((0..len as u8).collect::<Vec<u8>>()).unwrap();
        let mut bounds: Vec<usize> = cuts.into_iter().map(|c| c % (n + 1)).collect();
        bounds.sort_unstable();
        prop_assert_eq!(
            count_segmented(&db, &ep, &bounds),
            count_episode(&db, &ep),
            "bounds={:?} n={}", bounds, n
        );
    }

    /// The exact state-composition variant agrees with the sequential count for
    /// ARBITRARY episodes (repeats allowed), under any segmentation.
    #[test]
    fn segmented_exact_equals_sequential_for_any_episode(
        data in proptest::collection::vec(0u8..5, 1..400),
        items in proptest::collection::vec(0u8..5, 1..5),
        cuts in proptest::collection::vec(0usize..400, 0..10),
    ) {
        let ab = Alphabet::numbered(5).unwrap();
        let n = data.len();
        let db = EventDb::new(ab, data).unwrap();
        let ep = Episode::new(items).unwrap();
        let mut bounds: Vec<usize> = cuts.into_iter().map(|c| c % (n + 1)).collect();
        bounds.sort_unstable();
        prop_assert_eq!(
            count_segmented_exact(&db, &ep, &bounds),
            count_episode(&db, &ep),
            "bounds={:?} n={}", bounds, n
        );
    }

    /// Even partitions (how the kernels actually split the database across
    /// threads) preserve the count for every worker count up to the database
    /// length.
    #[test]
    fn even_partitions_preserve_counts(
        data in proptest::collection::vec(0u8..6, 1..300),
        parts in 1usize..65,
        len in 1usize..5,
    ) {
        let ab = Alphabet::numbered(6).unwrap();
        let n = data.len();
        let db = EventDb::new(ab, data).unwrap();
        let ep = Episode::new((0..len as u8).collect::<Vec<u8>>()).unwrap();
        let bounds = even_bounds(n, parts.min(n).max(1));
        prop_assert_eq!(count_segmented(&db, &ep, &bounds), count_episode(&db, &ep));
    }
}
