//! Integration test: the paper's eight characterizations (§5) hold on the
//! simulated testbed.
//!
//! The grid uses a quarter-scale database and a reduced block-size sweep so the
//! test completes quickly; the `reproduce` binary runs the same checks at full
//! scale (393,019 letters, 17 block sizes) — DESIGN.md §6 records both.

use gpu_sim::DeviceConfig;
use tdm_bench::{characterize, Grid, GridConfig};

fn test_grid() -> &'static Grid {
    static GRID: std::sync::OnceLock<Grid> = std::sync::OnceLock::new();
    GRID.get_or_init(|| {
        Grid::compute(&GridConfig {
            scale: 0.25,
            levels: vec![1, 2, 3],
            tpb_sweep: vec![16, 64, 96, 128, 256, 320, 512],
            cards: DeviceConfig::paper_testbed(),
            ..Default::default()
        })
    })
}

#[test]
fn all_eight_characterizations_reproduce() {
    let grid = test_grid();
    let results = characterize::all(grid);
    assert_eq!(results.len(), 8);
    let failed: Vec<String> = results
        .iter()
        .filter(|r| !r.passed)
        .map(|r| format!("C{} ({}): {}", r.id, r.name, r.details))
        .collect();
    assert!(
        failed.is_empty(),
        "characterizations failed:\n{}",
        failed.join("\n")
    );
}

#[test]
fn paper_conclusion_shape_holds() {
    // Conclusion: "the oldest card we tested was consistently the fastest for
    // small problem sizes" (thread-level kernels at L1 follow the shader clock)
    // and "the best execution time for large problem sizes always occurs on the
    // newest generation".
    let grid = test_grid();
    let gts = "GeForce 8800 GTS 512";
    let gtx = "GeForce GTX 280";
    // Small problem, thread-level: 8800 GTS 512 wins.
    let t_old = grid.best_of_algos(&[1, 2], 1, gts);
    let t_new = grid.best_of_algos(&[1, 2], 1, gtx);
    assert!(
        t_old < t_new,
        "L1 thread-level: 8800 {t_old} vs GTX280 {t_new}"
    );
    // Large problem: GTX 280 wins overall.
    let l3_old = grid.best_config(3, gts).2;
    let l3_new = grid.best_config(3, gtx).2;
    assert!(l3_new < l3_old, "L3 best: GTX {l3_new} vs 8800 {l3_old}");
}

#[test]
fn no_single_configuration_wins_everywhere() {
    // Abstract/§1: "a one-size-fits-all approach maps poorly across different
    // GPGPU cards … the problem size and graphics processor determine which
    // type of algorithm, data-access pattern, and number of threads should be
    // used."
    let grid = test_grid();
    let mut winners = std::collections::BTreeSet::new();
    for level in grid.levels() {
        for card in grid.cards() {
            let (algo, tpb, _) = grid.best_config(level, &card);
            winners.insert((level, algo, tpb));
        }
    }
    let algos: std::collections::BTreeSet<u8> = winners.iter().map(|(_, a, _)| *a).collect();
    assert!(
        algos.len() >= 2,
        "expected different levels/cards to prefer different algorithms, got {winners:?}"
    );
}
