//! Shape-regression tests for the reproduced figures: the qualitative facts
//! EXPERIMENTS.md reports must keep holding as the model evolves. Run at
//! quarter scale for speed (shapes are scale-invariant; the full-scale run is
//! the `reproduce` binary).

use gpu_sim::DeviceConfig;
use tdm_bench::{Grid, GridConfig};

const GTX: &str = "GeForce GTX 280";
const GTS: &str = "GeForce 8800 GTS 512";

fn grid() -> &'static Grid {
    static GRID: std::sync::OnceLock<Grid> = std::sync::OnceLock::new();
    GRID.get_or_init(|| {
        Grid::compute(&GridConfig {
            scale: 0.25,
            levels: vec![1, 2, 3],
            tpb_sweep: vec![16, 64, 96, 128, 256, 512],
            cards: DeviceConfig::paper_testbed(),
            ..Default::default()
        })
    })
}

#[test]
fn fig7a_block_level_dominates_level1() {
    let g = grid();
    // At L1, both block-level kernels beat both thread-level kernels at every
    // block size >= 64 (paper Fig. 7a's separation).
    for &tpb in &[64u32, 128, 256, 512] {
        let a1 = g.get(1, 1, tpb, GTX).time_ms;
        let a2 = g.get(2, 1, tpb, GTX).time_ms;
        let a3 = g.get(3, 1, tpb, GTX).time_ms;
        let a4 = g.get(4, 1, tpb, GTX).time_ms;
        assert!(a3 < a1 && a3 < a2, "tpb={tpb}: A3 {a3} vs A1 {a1}/A2 {a2}");
        assert!(a4 < a1 && a4 < a2, "tpb={tpb}: A4 {a4} vs A1 {a1}/A2 {a2}");
    }
}

#[test]
fn fig7b_algorithm3_optimum_is_small_tpb() {
    let g = grid();
    // Paper: "the best execution time which is Algorithm 3 at 64 threads".
    let times: Vec<(u32, f64)> = [16u32, 64, 96, 128, 256, 512]
        .iter()
        .map(|&t| (t, g.get(3, 2, t, GTX).time_ms))
        .collect();
    let (best_tpb, best) = times
        .iter()
        .copied()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .unwrap();
    assert!(best_tpb <= 96, "A3-L2 optimum at {best_tpb} ({best} ms)");
    // And the curve rises by 2x+ toward 512 (the thrash upturn).
    let t512 = g.get(3, 2, 512, GTX).time_ms;
    assert!(t512 > 2.0 * best, "no upturn: best {best}, 512 {t512}");
}

#[test]
fn fig7c_thread_level_wins_level3_with_96tpb_competitive() {
    let g = grid();
    let best_thread = g.best_of_algos(&[1, 2], 3, GTX);
    let best_block = g.best_of_algos(&[3, 4], 3, GTX);
    assert!(best_thread < best_block);
    // 96 tpb (the paper's reported optimum) is within 15% of A1's best.
    let a1_best = [16u32, 64, 96, 128, 256, 512]
        .iter()
        .map(|&t| g.get(1, 3, t, GTX).time_ms)
        .fold(f64::INFINITY, f64::min);
    let a1_96 = g.get(1, 3, 96, GTX).time_ms;
    assert!(a1_96 <= 1.15 * a1_best, "A1@96 {a1_96} vs best {a1_best}");
}

#[test]
fn fig8a_clock_ratio_is_linear() {
    let g = grid();
    // 9800 GX2 vs 8800 GTS 512 differ only in clock (and bandwidth, unused by
    // the latency-bound A1-L2): time ratio == clock ratio.
    for &tpb in &[64u32, 256] {
        let t_gts = g.get(1, 2, tpb, GTS).time_ms;
        let t_gx2 = g.get(1, 2, tpb, "GeForce 9800 GX2").time_ms;
        let ratio = t_gx2 / t_gts;
        assert!(
            (ratio - 1625.0 / 1500.0).abs() < 0.02,
            "tpb={tpb}: ratio {ratio}"
        );
    }
}

#[test]
fn fig8b_bandwidth_gap_opens_at_high_tpb() {
    let g = grid();
    // At 512 tpb the G92 cards thrash their 8 KB texture cache; the GTX 280
    // (double the effective working set, 2.5x the bandwidth) pulls ahead 3x+.
    let t_gts = g.get(3, 1, 512, GTS).time_ms;
    let t_gtx = g.get(3, 1, 512, GTX).time_ms;
    assert!(
        t_gtx * 3.0 < t_gts,
        "expected a bandwidth gap: 8800 {t_gts} vs GTX {t_gtx}"
    );
}

#[test]
fn fig9_grid_is_complete_and_positive() {
    let g = grid();
    // 4 algos x 3 levels x 6 tpb x 3 cards
    assert_eq!(g.cells.len(), 4 * 3 * 6 * 3);
    for c in &g.cells {
        assert!(c.time_ms > 0.0, "{c:?}");
        assert!(c.waves >= 1);
        assert!(c.occupancy > 0.0 && c.occupancy <= 1.0);
        assert!(c.tex_hit_rate >= 0.0 && c.tex_hit_rate <= 1.0);
    }
}

#[test]
fn bound_attribution_matches_the_papers_story() {
    let g = grid();
    // A1 at L1 (one warp): latency-bound. A3 at L3 on the 8800: its DRAM
    // traffic exceeds the database footprint many times over (thrash).
    assert_eq!(g.get(1, 1, 256, GTX).bound, "Latency");
    let a3 = g.get(3, 3, 512, GTS);
    let footprint_mb = g.db_len as f64 / 1e6;
    assert!(
        a3.dram_mb > 20.0 * footprint_mb,
        "A3-L3 traffic {} MB vs footprint {footprint_mb} MB",
        a3.dram_mb
    );
}
