//! Integration test: every counting backend in the workspace — the serial
//! GMiner-class scan, the compiled active-set counter, the database-sharded
//! engine, the MapReduce pool, and all four simulated GPU kernels — returns
//! bit-identical counts on a slice of the paper's database.

use temporal_mining::core::candidate::permutations;
use temporal_mining::core::count::count_episodes_naive;
use temporal_mining::prelude::*;
use temporal_mining::workloads::paper_database_scaled;

#[test]
fn all_backends_bit_identical_on_paper_db_slice() {
    // ~19,651 letters: large enough to shard, small enough for the serial scan.
    let db = paper_database_scaled(0.05);
    for level in [1usize, 2] {
        let episodes = permutations(db.alphabet(), level);
        let reference = count_episodes_naive(&db, &episodes);

        let mut results: Vec<(String, Vec<u64>)> = vec![
            (
                "cpu-serial-scan".into(),
                SerialScanBackend.count(&db, &episodes),
            ),
            (
                "cpu-active-set".into(),
                ActiveSetBackend::default().count(&db, &episodes),
            ),
            (
                "cpu-mapreduce".into(),
                MapReduceBackend::new(3).count(&db, &episodes),
            ),
        ];
        for workers in [1usize, 2, 4, 8] {
            results.push((
                format!("cpu-sharded-scan-w{workers}"),
                ShardedScanBackend::new(workers).count(&db, &episodes),
            ));
        }
        let problem = MiningProblem::new(&db, &episodes);
        for algo in Algorithm::ALL {
            let run = problem
                .run(
                    algo,
                    128,
                    &DeviceConfig::geforce_gtx_280(),
                    &CostModel::default(),
                    &SimOptions::default(),
                )
                .unwrap_or_else(|e| panic!("{algo} failed to launch: {e}"));
            results.push((format!("{algo}"), run.counts));
        }

        for (name, counts) in &results {
            assert_eq!(
                counts, &reference,
                "level {level}: {name} disagrees with the naive reference"
            );
        }
    }
}

#[test]
fn mining_results_identical_across_cpu_backends() {
    let db = paper_database_scaled(0.02);
    let miner = Miner::new(MinerConfig {
        alpha: 0.001,
        max_level: Some(3),
        ..Default::default()
    });
    let reference = miner.mine(&db, &mut SerialScanBackend);
    assert!(reference.total_frequent() > 0);
    assert_eq!(reference, miner.mine(&db, &mut ActiveSetBackend::default()));
    assert_eq!(reference, miner.mine(&db, &mut ShardedScanBackend::new(4)));
    assert_eq!(reference, miner.mine(&db, &mut MapReduceBackend::new(2)));
}
