//! Integration test: every counting backend in the workspace — the serial
//! GMiner-class scan, the compiled active-set counter, the database-sharded
//! engine, the MapReduce-style chunk executor, and all four simulated GPU
//! kernels — returns bit-identical counts on a slice of the paper's database,
//! all driven through one `MiningSession` (one compile per candidate set).

use temporal_mining::core::candidate::permutations;
use temporal_mining::core::count::count_episodes_naive;
use temporal_mining::prelude::*;
use temporal_mining::workloads::paper_database_scaled;

#[test]
fn all_backends_bit_identical_on_paper_db_slice() {
    // ~19,651 letters: large enough to shard, small enough for the serial scan.
    let db = paper_database_scaled(0.05);
    let mut session = MiningSession::builder(&db).workers(4).build();
    for level in [1usize, 2] {
        let episodes = permutations(db.alphabet(), level);
        let reference = count_episodes_naive(&db, &episodes);

        let mut executors: Vec<(String, Box<dyn Executor>)> = vec![
            ("cpu-serial-scan".into(), Box::new(SerialScanBackend)),
            (
                "cpu-active-set".into(),
                Box::new(ActiveSetBackend::default()),
            ),
            ("cpu-mapreduce".into(), Box::new(MapReduceBackend::new(3))),
            (
                "cpu-sharded-auto".into(),
                Box::new(ShardedScanBackend::auto()),
            ),
        ];
        for workers in [1usize, 2, 4, 8] {
            executors.push((
                format!("cpu-sharded-scan-w{workers}"),
                Box::new(ShardedScanBackend::new(workers)),
            ));
        }
        for algo in Algorithm::ALL {
            executors.push((
                format!("{algo}"),
                Box::new(GpuBackend::new(algo, 128, DeviceConfig::geforce_gtx_280())),
            ));
        }

        for (name, ex) in &mut executors {
            let counts = session
                .count_candidates(&episodes, ex.as_mut())
                .unwrap_or_else(|e| panic!("level {level}: {name} failed: {e}"));
            assert_eq!(
                counts, reference,
                "level {level}: {name} disagrees with the naive reference"
            );
        }
    }
}

#[test]
fn mining_results_identical_across_cpu_backends() {
    let db = paper_database_scaled(0.02);
    let miner = Miner::new(MinerConfig {
        alpha: 0.001,
        max_level: Some(3),
        ..Default::default()
    });
    let reference = miner.mine(&db, &mut SerialScanBackend).unwrap();
    assert!(reference.total_frequent() > 0);
    assert_eq!(
        reference,
        miner.mine(&db, &mut ActiveSetBackend::default()).unwrap()
    );
    assert_eq!(
        reference,
        miner.mine(&db, &mut ShardedScanBackend::new(4)).unwrap()
    );
    assert_eq!(
        reference,
        miner.mine(&db, &mut MapReduceBackend::new(2)).unwrap()
    );
}

/// The deprecated `CountingBackend` trait still works through the blanket
/// shim for any `Executor` — the migration path for old call sites.
#[test]
#[allow(deprecated)]
fn legacy_counting_backend_shim_matches_new_api() {
    let db = paper_database_scaled(0.02);
    let episodes = permutations(db.alphabet(), 1);
    let reference = count_episodes_naive(&db, &episodes);
    fn legacy_count<B: CountingBackend>(
        db: &temporal_mining::core::EventDb,
        eps: &[Episode],
        b: &mut B,
    ) -> Vec<u64> {
        b.count(db, eps)
    }
    assert_eq!(
        legacy_count(&db, &episodes, &mut ActiveSetBackend::default()),
        reference
    );
    assert_eq!(
        legacy_count(&db, &episodes, &mut ShardedScanBackend::new(2)),
        reference
    );
}
