//! End-to-end pipeline tests: workload generation → level-wise mining on every
//! backend (CPU serial, CPU active-set, CPU MapReduce, four simulated GPU
//! kernels) → identical results; plus the expiry extension on timestamped data
//! and dataset (de)serialization in the loop.

use temporal_mining::baselines::{ActiveSetBackend, MapReduceBackend, SerialScanBackend};
use temporal_mining::core::expiry::count_with_expiry;
use temporal_mining::prelude::*;
use temporal_mining::workloads::{
    io, market_basket, spike_trains, uniform_letters, BasketConfig, CausalChain, SpikeTrainConfig,
};

#[test]
fn all_backends_mine_identically() {
    let db = uniform_letters(15_000, 99);
    let miner = Miner::new(MinerConfig {
        alpha: 0.0008,
        max_level: Some(3),
        ..Default::default()
    });
    let reference = miner.mine(&db, &mut SerialScanBackend).unwrap();
    assert!(reference.total_frequent() > 0);

    let mut active = ActiveSetBackend::default();
    assert_eq!(miner.mine(&db, &mut active).unwrap(), reference);

    let mut mapreduce = MapReduceBackend::new(2);
    assert_eq!(miner.mine(&db, &mut mapreduce).unwrap(), reference);

    for algo in Algorithm::ALL {
        let mut gpu = GpuBackend::new(algo, 128, DeviceConfig::geforce_gtx_280());
        let result = miner.mine(&db, &mut gpu).unwrap();
        assert_eq!(result, reference, "{algo}");
        assert!(gpu.simulated_ms > 0.0, "{algo} reported no simulated time");
    }
}

#[test]
fn mining_respects_support_threshold() {
    let db = uniform_letters(50_000, 7);
    // Uniform text: level-1 supports are ~1/26 ≈ 0.038.
    let strict = Miner::new(MinerConfig {
        alpha: 0.05,
        ..Default::default()
    })
    .mine(&db, &mut ActiveSetBackend::default())
    .unwrap();
    assert_eq!(strict.total_frequent(), 0);

    let lax = Miner::new(MinerConfig {
        alpha: 0.03,
        max_level: Some(1),
        ..Default::default()
    })
    .mine(&db, &mut ActiveSetBackend::default())
    .unwrap();
    assert_eq!(lax.levels[0].len(), 26);
    for (_, count, support) in lax.iter() {
        assert!(support > 0.03);
        assert!(count > 1500);
    }
}

#[test]
fn spike_train_expiry_mining_recovers_circuit() {
    let chain = CausalChain {
        neurons: vec![3, 14, 8],
        delay_ms: 2.5,
        jitter_ms: 0.5,
        rate_hz: 5.0,
    };
    let db = spike_trains(&SpikeTrainConfig {
        neurons: 26,
        duration_ms: 30_000.0,
        base_rate_hz: 2.0,
        chains: vec![chain.clone()],
        seed: 11,
    });
    let episode = chain.episode();
    let tight = count_with_expiry(&db, &episode, 8_000).unwrap(); // 8 ms window
    let loose = count_with_expiry(&db, &episode, 10).unwrap(); // 10 us window
    assert!(
        tight > 30,
        "expected the circuit to fire often, got {tight}"
    );
    assert!(
        loose < tight / 5,
        "a 10us window should kill nearly all matches"
    );
}

#[test]
fn basket_round_trips_through_serialization_and_mines_the_motif() {
    let db = market_basket(&BasketConfig::default());
    // Round-trip through the on-disk format.
    let mut buf = Vec::new();
    io::write_db(&db, &mut buf).unwrap();
    let db2 = io::read_db(&buf[..]).unwrap();
    assert_eq!(db, db2);

    // Mine the deserialized copy and find the seeded motif at level 3.
    let miner = Miner::new(MinerConfig {
        alpha: 0.004,
        max_level: Some(3),
        ..Default::default()
    });
    let result = miner.mine(&db2, &mut ActiveSetBackend::default()).unwrap();
    let motif = Episode::new(vec![0, 1, 2]).unwrap(); // peanut-butter, bread, jelly
    assert!(
        result.count_of(&motif).is_some(),
        "seeded motif should be frequent; got {} frequent episodes",
        result.total_frequent()
    );
}

#[test]
fn gpu_backend_accumulates_time_across_levels() {
    let db = uniform_letters(8_000, 5);
    let mut gpu = GpuBackend::new(
        Algorithm::BlockTexture,
        64,
        DeviceConfig::geforce_9800_gx2(),
    );
    let miner = Miner::new(MinerConfig {
        alpha: 0.0005,
        max_level: Some(2),
        ..Default::default()
    });
    let _ = miner.mine(&db, &mut gpu).unwrap();
    let after_first = gpu.simulated_ms;
    let _ = miner.mine(&db, &mut gpu).unwrap();
    assert!(
        gpu.simulated_ms > after_first * 1.5,
        "time should accumulate"
    );
}

#[test]
fn facade_prelude_covers_the_doctest_workflow() {
    // Mirrors the crate-level doctest at a different scale/threshold.
    let db = temporal_mining::workloads::paper_database_scaled(0.02);
    let miner = Miner::new(MinerConfig {
        alpha: 0.0004,
        max_level: Some(2),
        ..Default::default()
    });
    let cpu = miner.mine(&db, &mut ActiveSetBackend::default()).unwrap();
    let mut gpu = GpuBackend::new(
        Algorithm::ThreadBuffered,
        96,
        DeviceConfig::geforce_8800_gts_512(),
    );
    assert_eq!(miner.mine(&db, &mut gpu).unwrap(), cpu);
}
