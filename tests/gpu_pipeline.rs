//! The GPU serving pipeline's differential suite: the persistent
//! [`GpuPipelineBackend`] drives the *same* plan/execute surfaces as every
//! CPU backend — solo sessions, `Miner::mine`, and K-member `CoSession`
//! batches (the union CSR modeled as a K-tenant launch) — and must stay
//! bit-identical to serial mining everywhere, while its serve-time dispatch
//! table sends small levels to the CPU and wide ones to the device.

use std::sync::Arc;
use temporal_mining::core::miner::SequentialBackend;
use temporal_mining::core::session::CoSession;
use temporal_mining::prelude::*;
use temporal_mining::workloads::markov_letters;

/// K distinct configs over one db: stepped thresholds and level bounds, so
/// members survive (and retire) at different levels.
fn stepped_configs(k: usize) -> Vec<MinerConfig> {
    (0..k)
        .map(|i| MinerConfig {
            alpha: 0.001 * (1.0 + i as f64),
            max_level: Some(2 + (i % 2)),
            ..Default::default()
        })
        .collect()
}

fn serial_results(db: &EventDb, configs: &[MinerConfig]) -> Vec<MiningResult> {
    configs
        .iter()
        .map(|cfg| {
            Miner::new(*cfg)
                .mine(db, &mut SequentialBackend::default())
                .expect("serial mining failed")
        })
        .collect()
}

fn pipeline(tenants: u32) -> GpuPipelineBackend {
    GpuPipelineBackend::with_defaults(DeviceConfig::geforce_gtx_280()).tenants(tenants)
}

#[test]
fn union_batches_demux_bit_identically_for_k_2_4_8() {
    let db = Arc::new(markov_letters(20_000, 7, 0.65));
    for k in [2usize, 4, 8] {
        let configs = stepped_configs(k);
        let serial = serial_results(&db, &configs);
        for workers in [1usize, 4] {
            let mut group = CoSession::builder(Arc::clone(&db))
                .configs(configs.iter().copied())
                .workers(workers)
                .build();
            let mut backend = pipeline(k as u32);
            let results = group.co_mine(&mut backend).expect("co-mining failed");
            assert_eq!(results.len(), k);
            for (i, (got, want)) in results.iter().zip(&serial).enumerate() {
                assert_eq!(got, want, "k={k} workers={workers} member {i} diverged");
            }
        }
    }
}

#[test]
fn repeated_item_unions_ride_the_pipeline_exactly() {
    // distinct_items_only = false lets the Apriori join emit repeated-item
    // episodes ("ABA"); the pipeline's counts must inherit the exact
    // state-composition semantics whichever side of the dispatch table runs.
    let db =
        Arc::new(EventDb::from_str_symbols(&Alphabet::latin26(), &"ABAABBA".repeat(800)).unwrap());
    let configs = vec![
        MinerConfig {
            alpha: 0.01,
            max_level: Some(3),
            distinct_items_only: false,
        },
        MinerConfig {
            alpha: 0.05,
            max_level: Some(3),
            distinct_items_only: true,
        },
        MinerConfig {
            alpha: 0.02,
            max_level: Some(2),
            distinct_items_only: false,
        },
    ];
    let serial = serial_results(&db, &configs);
    assert!(
        serial[0]
            .levels
            .iter()
            .flat_map(|l| l.frequent.iter())
            .any(|(e, _)| !e.has_distinct_items()),
        "the workload must actually surface repeated-item episodes"
    );
    for workers in 1usize..=8 {
        let mut group = CoSession::builder(Arc::clone(&db))
            .configs(configs.iter().copied())
            .workers(workers)
            .build();
        let results = group
            .co_mine(&mut pipeline(configs.len() as u32))
            .expect("co-mining failed");
        assert_eq!(results, serial, "workers={workers}");
    }
}

#[test]
fn forced_gpu_and_dispatching_pipelines_agree_with_the_miner() {
    let db = markov_letters(15_000, 5, 0.6);
    let config = MinerConfig {
        alpha: 0.002,
        max_level: Some(3),
        ..Default::default()
    };
    let serial = Miner::new(config)
        .mine(&db, &mut SequentialBackend::default())
        .unwrap();

    let mut dispatching = pipeline(1);
    assert_eq!(
        Miner::new(config).mine(&db, &mut dispatching).unwrap(),
        serial
    );
    // The dispatch table split the run: at least one level each way on a
    // workload with a tiny level 1 and wide level 2+.
    let classes: Vec<_> = dispatching.decisions.iter().map(|d| d.class).collect();
    assert!(
        classes.iter().any(|c| c.is_cpu()) && classes.iter().any(|c| !c.is_cpu()),
        "expected a CPU/GPU split across levels, got {classes:?}"
    );

    let mut forced = pipeline(1).force_gpu();
    assert_eq!(Miner::new(config).mine(&db, &mut forced).unwrap(), serial);
    assert!(
        forced.decisions.iter().all(|d| !d.class.is_cpu()),
        "force_gpu must pin every level to the device"
    );
    assert!(forced.simulated_ms() > 0.0);
}

#[test]
fn the_resident_stream_survives_across_mining_runs() {
    // Two mines over the same stream: the second run re-uses the resident
    // upload (fingerprint match), so the pipeline reports exactly one upload
    // worth of H2D traffic, not two.
    let db = markov_letters(10_000, 4, 0.6);
    let config = MinerConfig {
        alpha: 0.005,
        max_level: Some(2),
        ..Default::default()
    };
    let mut backend = pipeline(1).force_gpu();
    let first = Miner::new(config).mine(&db, &mut backend).unwrap();
    let advances_after_first = backend.pipeline().advances();
    let second = Miner::new(config).mine(&db, &mut backend).unwrap();
    assert_eq!(first, second);
    assert!(
        backend.pipeline().advances() > advances_after_first,
        "the second run must advance the already-resident pipeline"
    );
    let res = backend.pipeline().resident().expect("stream resident");
    assert!(res.bytes > 0 && res.upload_ms > 0.0);
}
