//! Cross-request co-mining: the adversarial differential suite.
//!
//! The co-mining claim is sharp — a K-request batch over one database is
//! served by a **single** union scan per level, and every member's result is
//! **bit-identical** to mining that member's config serially with its own
//! `Miner::mine`. This suite attacks the claim from every side:
//!
//! * K ∈ {2, 4, 8} concurrent configs, deterministic and property-based,
//!   demuxed results compared bit-for-bit against serial mining;
//! * a spy executor proving a K-member batch issues exactly **one** scan per
//!   level — and that the scanned set is the deduplicated union, not K
//!   concatenated copies;
//! * adversarial candidate overlap: disjoint, identical, and
//!   partially-overlapping candidate sets, repeated items inside and across
//!   sets, sets that go empty at different levels, workers 1..=8;
//! * the serving layer end to end: a staged K-client batch through
//!   `MiningService` with a formation window, every response `CoMined` and
//!   bit-identical, exactly one executor running the fused scans.

use proptest::prelude::*;
use std::sync::Arc;
use temporal_mining::core::count::count_episodes_naive;
use temporal_mining::core::engine::{CandidateUnion, CompiledCandidates, CountScratch};
use temporal_mining::core::miner::SequentialBackend;
use temporal_mining::core::session::CoSession;
use temporal_mining::prelude::*;
use temporal_mining::serve::CacheOutcome;
use temporal_mining::workloads::markov_letters;

/// Counts executor invocations and the candidate-set size of each request it
/// was handed — the instrument for "one union scan per level, not K".
#[derive(Default)]
struct ScanSpy {
    inner: ActiveSetBackend,
    calls: usize,
    set_sizes: Vec<usize>,
}

impl Executor for ScanSpy {
    fn execute(&mut self, req: &CountRequest<'_>) -> Result<Counts, BackendError> {
        self.calls += 1;
        self.set_sizes.push(req.candidates());
        self.inner.execute(req)
    }

    fn name(&self) -> &str {
        "scan-spy"
    }
}

/// K distinct configs over one db: stepped thresholds and level bounds, so
/// members survive (and retire) at different levels.
fn stepped_configs(k: usize) -> Vec<MinerConfig> {
    (0..k)
        .map(|i| MinerConfig {
            alpha: 0.001 * (1.0 + i as f64),
            max_level: Some(2 + (i % 2)),
            ..Default::default()
        })
        .collect()
}

fn serial_results(db: &EventDb, configs: &[MinerConfig]) -> Vec<MiningResult> {
    configs
        .iter()
        .map(|cfg| {
            Miner::new(*cfg)
                .mine(db, &mut SequentialBackend::default())
                .expect("serial mining failed")
        })
        .collect()
}

#[test]
fn batched_counts_are_bit_identical_to_serial_for_k_2_4_8() {
    let db = Arc::new(markov_letters(20_000, 7, 0.65));
    for k in [2usize, 4, 8] {
        let configs = stepped_configs(k);
        let serial = serial_results(&db, &configs);
        // Across executors too: the sequential scan and the database-sharded
        // pool scan must both demux to the serial answer.
        for workers in [1usize, 4] {
            let mut group = CoSession::builder(Arc::clone(&db))
                .configs(configs.iter().copied())
                .workers(workers)
                .build();
            let results = group
                .co_mine(&mut ShardedScanBackend::auto())
                .expect("co-mining failed");
            assert_eq!(results.len(), k);
            for (i, (got, want)) in results.iter().zip(&serial).enumerate() {
                assert_eq!(got, want, "k={k} workers={workers} member {i} diverged");
            }
        }
    }
}

#[test]
fn a_k_request_batch_issues_one_union_scan_per_level_not_k() {
    let db = Arc::new(markov_letters(12_000, 3, 0.6));
    let alphabet_len = db.alphabet().len();
    for k in [2usize, 4, 8] {
        // All members share depth 2 here so the expected scan count is exact.
        let configs: Vec<MinerConfig> = (0..k)
            .map(|i| MinerConfig {
                alpha: 0.0005 * (1.0 + i as f64),
                max_level: Some(2),
                ..Default::default()
            })
            .collect();
        let serial = serial_results(&db, &configs);
        let deepest = serial.iter().map(|r| r.levels.len()).max().unwrap();

        let mut spy = ScanSpy::default();
        let mut group = CoSession::builder(Arc::clone(&db))
            .configs(configs.iter().copied())
            .build();
        let results = group.co_mine(&mut spy).expect("co-mining failed");
        for (got, want) in results.iter().zip(&serial) {
            assert_eq!(got, want);
        }

        // THE claim: one scan per level — however many members.
        assert_eq!(
            spy.calls, deepest,
            "k={k}: a batch must issue one union scan per level, not k per level"
        );
        assert_eq!(group.compiles(), deepest);

        // And the level-1 scan saw the deduplicated union (every member's
        // level-1 set is the full alphabet), not k concatenated copies.
        assert_eq!(
            spy.set_sizes[0], alphabet_len,
            "k={k}: level-1 union must dedup to the alphabet"
        );
        assert!(
            spy.set_sizes.iter().all(|&n| n > 0),
            "empty sets must never reach the executor"
        );
    }
}

#[test]
fn members_that_go_empty_early_stop_riding_the_union() {
    let db = Arc::new(markov_letters(10_000, 9, 0.7));
    // Member 0 dies at level 1 (nothing passes α = 0.9); member 1 mines on.
    let configs = vec![
        MinerConfig {
            alpha: 0.9,
            ..Default::default()
        },
        MinerConfig {
            alpha: 0.002,
            max_level: Some(3),
            ..Default::default()
        },
    ];
    let serial = serial_results(&db, &configs);
    assert_eq!(serial[0].levels.len(), 1, "member 0 must die at level 1");
    assert!(
        serial[1].levels.len() > 1,
        "member 1 must mine past level 1"
    );

    let mut spy = ScanSpy::default();
    let mut group = CoSession::builder(Arc::clone(&db))
        .configs(configs.iter().copied())
        .build();
    let results = group.co_mine(&mut spy).expect("co-mining failed");
    assert_eq!(results, serial);
    // Scans continue exactly as long as the deepest member needs.
    assert_eq!(spy.calls, serial[1].levels.len());
}

#[test]
fn repeated_item_universes_co_mine_exactly() {
    // distinct_items_only = false lets the Apriori join emit repeated-item
    // episodes ("ABA"), the regime where sharded counting needs its exact
    // state-composition fallback — co-mining must inherit that exactness.
    let db =
        Arc::new(EventDb::from_str_symbols(&Alphabet::latin26(), &"ABAABBA".repeat(800)).unwrap());
    let configs = vec![
        MinerConfig {
            alpha: 0.01,
            max_level: Some(3),
            distinct_items_only: false,
        },
        MinerConfig {
            alpha: 0.05,
            max_level: Some(3),
            distinct_items_only: true,
        },
        MinerConfig {
            alpha: 0.02,
            max_level: Some(2),
            distinct_items_only: false,
        },
    ];
    let serial = serial_results(&db, &configs);
    assert!(
        serial[0]
            .levels
            .iter()
            .flat_map(|l| l.frequent.iter())
            .any(|(e, _)| !e.has_distinct_items()),
        "the workload must actually surface repeated-item episodes"
    );
    for workers in 1usize..=8 {
        let mut group = CoSession::builder(Arc::clone(&db))
            .configs(configs.iter().copied())
            .workers(workers)
            .build();
        let results = group
            .co_mine(&mut ShardedScanBackend::new(workers))
            .expect("co-mining failed");
        assert_eq!(results, serial, "workers={workers}");
    }
}

#[test]
fn malformed_executors_fail_the_whole_batch_with_the_union_length() {
    struct Broken;
    impl Executor for Broken {
        fn execute(&mut self, req: &CountRequest<'_>) -> Result<Counts, BackendError> {
            Ok(vec![0; req.candidates() + 3])
        }
        fn name(&self) -> &str {
            "broken"
        }
    }
    let db = Arc::new(markov_letters(5_000, 1, 0.5));
    let mut group = CoSession::builder(Arc::clone(&db))
        .configs(stepped_configs(3))
        .build();
    let err = group.co_mine(&mut Broken).unwrap_err();
    assert_eq!(err.level, 1);
    assert_eq!(err.backend, "broken");
    match err.source {
        BackendError::CountLength { expected, got } => {
            assert_eq!(expected, db.alphabet().len());
            assert_eq!(got, expected + 3);
        }
        other => panic!("wrong error: {other:?}"),
    }
}

#[test]
fn service_batch_issues_one_fused_scan_stream_for_k_clients() {
    for k in [2usize, 4, 8] {
        let service = Arc::new(MiningService::new(ServiceConfig {
            workers: 2,
            max_in_flight: k + 1,
            comine_window: std::time::Duration::from_secs(10),
            comine_max_batch: k,
            ..Default::default()
        }));
        let db = Arc::new(markov_letters(15_000, k as u64, 0.6));
        let configs: Vec<MinerConfig> = (0..k)
            .map(|i| MinerConfig {
                alpha: 0.001 * (1.0 + i as f64),
                max_level: Some(2),
                ..Default::default()
            })
            .collect();
        let serial = serial_results(&db, &configs);
        let deepest = serial.iter().map(|r| r.levels.len()).max().unwrap();

        // Stage the leader first so all k requests land in one batch (the
        // batch closes on max_batch, not the window). Every client carries
        // its own spy: only the leader's runs the fused scans.
        let mut spies: Vec<ScanSpy> = (0..k).map(|_| ScanSpy::default()).collect();
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            let mut spy_iter = spies.iter_mut();
            {
                let service = Arc::clone(&service);
                let req = MiningRequest::new(Arc::clone(&db), configs[0]);
                let spy = spy_iter.next().unwrap();
                handles.push(s.spawn(move || service.submit_with(&req, spy).unwrap()));
            }
            while service.open_batches() == 0 {
                std::thread::yield_now();
            }
            for (cfg, spy) in configs[1..].iter().zip(spy_iter) {
                let service = Arc::clone(&service);
                let req = MiningRequest::new(Arc::clone(&db), *cfg);
                handles.push(s.spawn(move || service.submit_with(&req, spy).unwrap()));
            }
            for (i, h) in handles.into_iter().enumerate() {
                let resp = h.join().unwrap();
                assert_eq!(resp.result, serial[i], "k={k} client {i} diverged");
                assert_eq!(resp.stats.cache, CacheOutcome::CoMined, "k={k} client {i}");
            }
        });

        // Across ALL k clients, exactly one scan per level ran — k-1 spies
        // never executed at all.
        let total: usize = spies.iter().map(|s| s.calls).sum();
        assert_eq!(
            total, deepest,
            "k={k}: the whole batch must cost one scan per level"
        );
        assert_eq!(spies.iter().filter(|s| s.calls > 0).count(), 1);
        let stats = service.stats();
        assert_eq!(stats.comining.batches, 1, "k={k}");
        assert_eq!(stats.comining.fused_requests, k as u64, "k={k}");
        assert_eq!(stats.completed, k as u64, "k={k}");
    }
}

/// Builds episode sets with a chosen overlap pattern from a shared pool of
/// episodes: 0 = identical, 1 = disjoint slices, 2 = overlapping windows.
fn overlapped_sets(pool: &[Episode], k: usize, mode: u8) -> Vec<Vec<Episode>> {
    let n = pool.len().max(1);
    (0..k)
        .map(|i| match mode {
            0 => pool.to_vec(),
            1 => {
                let chunk = n.div_ceil(k);
                pool.iter().skip(i * chunk).take(chunk).cloned().collect()
            }
            _ => {
                // Windows of 2/3 the pool, shifted per member: neighbors
                // share about half their episodes.
                let len = (2 * n).div_ceil(3).max(1);
                let start = (i * n) / k.max(1);
                (0..len).map(|j| pool[(start + j) % n].clone()).collect()
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The demux identity under arbitrary data, arbitrary episode sets
    /// (repeats included), and every worker count 1..=8: union counts
    /// gathered back per source equal that source's own counts — for both
    /// the sequential scan and the sharded pool scan over the union.
    #[test]
    fn union_demux_equals_solo_counts(
        data in proptest::collection::vec(0u8..6, 0..400),
        sets in proptest::collection::vec(
            proptest::collection::vec(proptest::collection::vec(0u8..6, 1..4), 0..12),
            2..6,
        ),
        workers in 1usize..=8,
    ) {
        let ab = Alphabet::numbered(6).unwrap();
        let db = EventDb::new(ab, data).unwrap();
        let sets: Vec<Vec<Episode>> = sets
            .into_iter()
            .map(|set| set.into_iter().map(|v| Episode::new(v).unwrap()).collect())
            .collect();
        let refs: Vec<&[Episode]> = sets.iter().map(|s| s.as_slice()).collect();
        let union = CandidateUnion::build(&refs);
        let compiled = Arc::new(CompiledCandidates::compile(6, union.episodes()));
        let stream: Arc<[u8]> = Arc::from(db.symbols());
        let sequential = compiled.count(&stream, &mut CountScratch::new());
        // The Arc-native entry the batch path's inputs fit (shared handles,
        // zero snapshot) must agree with the sequential scan.
        let sharded = CompiledCandidates::count_sharded_arc(&compiled, &stream, workers);
        prop_assert_eq!(&sequential, &sharded);
        for (s, set) in sets.iter().enumerate() {
            prop_assert_eq!(union.demux(s, &sequential), count_episodes_naive(&db, set));
        }
    }

    /// Adversarial overlap shapes — identical, disjoint, and
    /// partially-overlapping candidate sets drawn from one pool (repeated
    /// items included) — demux exactly under any worker count.
    #[test]
    fn union_demux_survives_disjoint_identical_and_partial_overlap(
        data in proptest::collection::vec(0u8..5, 50..300),
        pool in proptest::collection::vec(proptest::collection::vec(0u8..5, 1..4), 4..20),
        k in 2usize..=8,
        mode in 0u8..3,
        workers in 1usize..=8,
    ) {
        let ab = Alphabet::numbered(5).unwrap();
        let db = EventDb::new(ab, data).unwrap();
        let pool: Vec<Episode> = pool.into_iter().map(|v| Episode::new(v).unwrap()).collect();
        let sets = overlapped_sets(&pool, k, mode);
        let refs: Vec<&[Episode]> = sets.iter().map(|s| s.as_slice()).collect();
        let union = CandidateUnion::build(&refs);
        if mode == 0 {
            // Identical sets must dedup to exactly one set's distinct size.
            let solo = CandidateUnion::build(&refs[..1]);
            prop_assert_eq!(union.len(), solo.len());
        }
        let compiled = CompiledCandidates::compile(5, union.episodes());
        let counts = compiled.count_sharded(db.symbols(), workers);
        for (s, set) in sets.iter().enumerate() {
            prop_assert_eq!(union.demux(s, &counts), count_episodes_naive(&db, set));
        }
    }

    /// The full loop: CoSession over arbitrary configs (thresholds that
    /// empty levels early, different level bounds, repeated-item universes)
    /// equals per-config serial mining, on sequential and sharded executors.
    #[test]
    fn co_mining_equals_serial_mining_under_arbitrary_configs(
        data in proptest::collection::vec(0u8..4, 0..300),
        alphas in proptest::collection::vec(0.0f64..0.4, 2..6),
        max_levels in proptest::collection::vec(1usize..4, 2..6),
    ) {
        let ab = Alphabet::numbered(4).unwrap();
        let db = Arc::new(EventDb::new(ab, data).unwrap());
        let k = alphas.len().min(max_levels.len());
        let configs: Vec<MinerConfig> = (0..k)
            .map(|i| MinerConfig {
                alpha: alphas[i],
                max_level: Some(max_levels[i]),
                distinct_items_only: i % 2 == 0,
            })
            .collect();
        let serial = serial_results(&db, &configs);
        let mut group = CoSession::builder(Arc::clone(&db))
            .configs(configs.iter().copied())
            .build();
        let fused = group.co_mine(&mut SequentialBackend::default()).unwrap();
        prop_assert_eq!(&fused, &serial);
        let mut sharded_group = CoSession::builder(Arc::clone(&db))
            .configs(configs.iter().copied())
            .workers(3)
            .build();
        let sharded = sharded_group.co_mine(&mut ShardedScanBackend::new(3)).unwrap();
        prop_assert_eq!(&sharded, &serial);
    }
}
