//! Serving-layer conformance: the multi-tenant `MiningService` must be
//! *observationally identical* to serial mining under any concurrency.
//!
//! * 16 concurrent clients over one shared pool, mixed workloads (Markov,
//!   spike-train, market-basket) and mixed backends — every response
//!   bit-identical to a serial `Miner::mine` of the same request;
//! * session-cache hits skip session planning (snapshot, shard bounds, buffer
//!   allocation): the compiled candidate buffers keep the **same address**
//!   across requests (asserted with a spy executor);
//! * cache hit/miss/eviction semantics and db-hash collision safety — two
//!   databases with an equal hash-relevant prefix but different content never
//!   share a session;
//! * session-cache × co-mining interaction: a request whose session is
//!   parked may still join a fused batch, and the union scan never touches
//!   parked sessions — their compiled buffers keep the same address across a
//!   batch (the bit-identity of fused results themselves is proven in
//!   `tests/comining.rs`);
//! * **overload-first scheduling**: with a saturated one-slot gate, K queued
//!   same-database requests fuse in the waiting room — joiners hold no
//!   admission slot, the batch is admitted as one unit, and a spy executor
//!   observes exactly one union scan per level instead of K solo runs;
//! * repeated bundles hit the co-session cache: the fused union scan's
//!   compiled buffers keep the same address across batches, even when the
//!   bundle's members arrive in a different order;
//! * fused batches vote on the backend (majority wins, leader breaks ties);
//! * priority + admission-limit plumbing end to end.

use std::sync::Arc;
use temporal_mining::core::engine::CompiledCandidates;
use temporal_mining::core::miner::SequentialBackend;
use temporal_mining::prelude::*;
use temporal_mining::serve::CacheOutcome;
use temporal_mining::workloads::{
    basket::{market_basket, BasketConfig},
    markov_letters,
    spikes::{spike_trains, SpikeTrainConfig},
};

fn mixed_workloads() -> Vec<Arc<EventDb>> {
    vec![
        Arc::new(markov_letters(30_000, 11, 0.7)),
        Arc::new(spike_trains(&SpikeTrainConfig {
            neurons: 26,
            duration_ms: 20_000.0,
            base_rate_hz: 8.0,
            ..Default::default()
        })),
        Arc::new(market_basket(&BasketConfig::default())),
    ]
}

fn serve_config(workers: usize) -> ServiceConfig {
    ServiceConfig {
        workers,
        ..Default::default()
    }
}

fn mine_config() -> MinerConfig {
    MinerConfig {
        alpha: 0.001,
        max_level: Some(2),
        ..Default::default()
    }
}

#[test]
fn sixteen_concurrent_clients_match_serial_mining_bit_for_bit() {
    let dbs = mixed_workloads();
    let config = mine_config();
    // Serial ground truth, one per workload, computed without the service.
    let serial: Vec<MiningResult> = dbs
        .iter()
        .map(|db| {
            Miner::new(config)
                .mine(db.as_ref(), &mut SequentialBackend::default())
                .unwrap()
        })
        .collect();

    let service = Arc::new(MiningService::new(ServiceConfig {
        workers: 4,
        max_in_flight: 16,
        ..Default::default()
    }));
    let backends = [
        BackendChoice::Sharded,
        BackendChoice::MapReduce,
        BackendChoice::ActiveSet,
        BackendChoice::Sequential,
    ];
    std::thread::scope(|s| {
        for client in 0..16usize {
            let service = Arc::clone(&service);
            let dbs = dbs.clone();
            let serial = &serial;
            s.spawn(move || {
                for round in 0..3usize {
                    let which = (client + round) % dbs.len();
                    let req = MiningRequest::new(Arc::clone(&dbs[which]), config)
                        .backend(backends[(client + round) % backends.len()]);
                    let resp = service.submit(&req).expect("request failed");
                    assert_eq!(
                        resp.result, serial[which],
                        "client {client} round {round} diverged from serial mining"
                    );
                }
            });
        }
    });

    let stats = service.stats();
    assert_eq!(stats.completed, 48);
    assert_eq!(stats.failed + stats.rejected, 0);
    // 3 workloads, one planned session each; every other request could hit.
    assert!(stats.cache.misses as usize >= dbs.len());
    assert!(
        stats.cache.hits > 0,
        "expected warm-session reuse: {stats:?}"
    );
    assert_eq!(stats.cache.collisions, 0);
}

/// Records the address of every compiled candidate set it executes against.
#[derive(Default)]
struct AddressSpy {
    inner: temporal_mining::baselines::ActiveSetBackend,
    addrs: Vec<usize>,
}

impl Executor for AddressSpy {
    fn execute(&mut self, req: &CountRequest<'_>) -> Result<Counts, BackendError> {
        self.addrs
            .push(req.compiled() as *const CompiledCandidates as usize);
        self.inner.execute(req)
    }

    fn name(&self) -> &str {
        "address-spy"
    }
}

#[test]
fn cache_hits_reuse_the_same_compiled_buffers() {
    let service = MiningService::new(serve_config(2));
    let db = Arc::new(markov_letters(20_000, 5, 0.6));
    let req = MiningRequest::new(Arc::clone(&db), mine_config());

    let mut spy = AddressSpy::default();
    let cold = service.submit_with(&req, &mut spy).unwrap();
    assert_eq!(cold.stats.cache, CacheOutcome::Miss);
    assert!(!spy.addrs.is_empty());
    let cold_addrs = std::mem::take(&mut spy.addrs);

    // Second, third request: cache hits recompile in place into the parked
    // session's buffers — every level executes against the very same
    // compiled allocation the first request planned.
    for round in 0..2 {
        let warm = service.submit_with(&req, &mut spy).unwrap();
        assert_eq!(warm.stats.cache, CacheOutcome::Hit, "round {round}");
        assert_eq!(
            spy.addrs, cold_addrs,
            "round {round}: compiled buffers moved across cached requests"
        );
        assert_eq!(warm.result, cold.result);
        spy.addrs.clear();
    }
}

#[test]
fn equal_prefix_different_content_never_shares_a_session() {
    // Two databases identical in their first 20k symbols, diverging after:
    // any prefix-only or lazy hashing would assign them one key. They must
    // mine to different results and occupy distinct cache entries.
    let service = MiningService::new(serve_config(2));
    let prefix = "ABCD".repeat(5_000);
    let a = Arc::new(
        EventDb::from_str_symbols(&Alphabet::latin26(), &(prefix.clone() + &"XY".repeat(500)))
            .unwrap(),
    );
    let b = Arc::new(
        EventDb::from_str_symbols(&Alphabet::latin26(), &(prefix + &"YX".repeat(500))).unwrap(),
    );
    let cfg = mine_config();

    let ra = service
        .submit(&MiningRequest::new(Arc::clone(&a), cfg))
        .unwrap();
    let rb = service
        .submit(&MiningRequest::new(Arc::clone(&b), cfg))
        .unwrap();
    assert_eq!(rb.stats.cache, CacheOutcome::Miss);
    assert_ne!(
        ra.result, rb.result,
        "different content must mine differently"
    );
    assert_ne!(ra.stats.key, rb.stats.key, "content hash ignored the tail");
    assert_eq!(service.cached_sessions(), 2);

    // Each db re-hits its own session, and the results replay exactly.
    let ra2 = service.submit(&MiningRequest::new(a, cfg)).unwrap();
    let rb2 = service.submit(&MiningRequest::new(b, cfg)).unwrap();
    assert_eq!(ra2.stats.cache, CacheOutcome::Hit);
    assert_eq!(rb2.stats.cache, CacheOutcome::Hit);
    assert_eq!(ra.result, ra2.result);
    assert_eq!(rb.result, rb2.result);
    assert_eq!(service.stats().cache.collisions, 0);
}

#[test]
fn eviction_makes_room_and_evicted_requests_miss_again() {
    let service = MiningService::new(ServiceConfig {
        workers: 1,
        cache_capacity: 2,
        ..Default::default()
    });
    let cfg = mine_config();
    let dbs = mixed_workloads();
    for db in &dbs {
        service
            .submit(&MiningRequest::new(Arc::clone(db), cfg))
            .unwrap();
    }
    let stats = service.stats();
    assert_eq!(service.cached_sessions(), 2);
    assert_eq!(stats.cache.evictions, 1);
    // The first workload was evicted (LRU): resubmitting misses, re-plans,
    // and still produces the right result.
    let again = service
        .submit(&MiningRequest::new(Arc::clone(&dbs[0]), cfg))
        .unwrap();
    assert_eq!(again.stats.cache, CacheOutcome::Miss);
    // The most-recent workload is still parked.
    let warm = service
        .submit(&MiningRequest::new(Arc::clone(&dbs[2]), cfg))
        .unwrap();
    assert_eq!(warm.stats.cache, CacheOutcome::Hit);
}

#[test]
fn cache_hits_may_join_a_batch_and_parked_sessions_stay_stable_after_union_scans() {
    // Window 300ms: lone requests pay the window then fall back to the solo
    // cache path; concurrent same-db requests fuse. max_batch 2 closes the
    // staged batch immediately.
    let service = Arc::new(MiningService::new(ServiceConfig {
        workers: 2,
        max_in_flight: 4,
        comine_window: std::time::Duration::from_millis(300),
        comine_max_batch: 2,
        ..Default::default()
    }));
    let db = Arc::new(markov_letters(15_000, 41, 0.6));
    let cfg_a = mine_config();
    let cfg_b = MinerConfig {
        alpha: 0.01,
        ..mine_config()
    };
    let req_a = MiningRequest::new(Arc::clone(&db), cfg_a);

    // Park a session for (db, cfg_a) and record its compiled-buffer address.
    let mut spy = AddressSpy::default();
    let cold = service.submit_with(&req_a, &mut spy).unwrap();
    assert_eq!(cold.stats.cache, CacheOutcome::Miss);
    let parked_addrs = std::mem::take(&mut spy.addrs);
    assert!(!parked_addrs.is_empty());

    // A request whose session is parked (it *would* be a cache hit) can
    // still join a batch: submit cfg_a and cfg_b concurrently. Both must be
    // served from the fused scan, bit-identical to serial mining.
    let serial_a = Miner::new(cfg_a)
        .mine(db.as_ref(), &mut SequentialBackend::default())
        .unwrap();
    let serial_b = Miner::new(cfg_b)
        .mine(db.as_ref(), &mut SequentialBackend::default())
        .unwrap();
    assert_eq!(cold.result, serial_a);
    std::thread::scope(|s| {
        let leader = {
            let service = Arc::clone(&service);
            let req = req_a.clone();
            s.spawn(move || service.submit(&req).unwrap())
        };
        while service.open_batches() == 0 {
            std::thread::yield_now();
        }
        let joiner = {
            let service = Arc::clone(&service);
            let req = MiningRequest::new(Arc::clone(&db), cfg_b);
            s.spawn(move || service.submit(&req).unwrap())
        };
        let la = leader.join().unwrap();
        let jb = joiner.join().unwrap();
        assert_eq!(la.stats.cache, CacheOutcome::CoMined);
        assert_eq!(jb.stats.cache, CacheOutcome::CoMined);
        assert_eq!(la.result, serial_a);
        assert_eq!(jb.result, serial_b);
    });
    let stats = service.stats();
    assert_eq!(stats.comining.batches, 1);
    assert_eq!(stats.comining.fused_requests, 2);

    // The union scan had its own compiled buffers: the parked (db, cfg_a)
    // session was never touched, so the next solo request hits the cache and
    // executes against the *same* compiled allocation as before the batch.
    let warm = service.submit_with(&req_a, &mut spy).unwrap();
    assert_eq!(warm.stats.cache, CacheOutcome::Hit);
    assert_eq!(warm.result, serial_a);
    assert_eq!(
        spy.addrs, parked_addrs,
        "union scan moved a parked session's compiled buffers"
    );
}

/// Asserts the request's scheduling class reaches every `CountRequest` (the
/// lane the parallel executors submit their pool jobs on).
struct PrioritySpy {
    expected: Priority,
    inner: ShardedScanBackend,
    calls: usize,
}

impl Executor for PrioritySpy {
    fn execute(&mut self, req: &CountRequest<'_>) -> Result<Counts, BackendError> {
        assert_eq!(req.priority(), self.expected, "job-lane priority lost");
        self.calls += 1;
        self.inner.execute(req)
    }

    fn name(&self) -> &str {
        "priority-spy"
    }
}

#[test]
fn priorities_and_admission_are_wired_through() {
    let service = MiningService::new(ServiceConfig {
        workers: 2,
        max_in_flight: 1,
        ..Default::default()
    });
    let db = Arc::new(markov_letters(8_000, 3, 0.5));
    for priority in [Priority::High, Priority::Normal] {
        let req = MiningRequest::new(Arc::clone(&db), mine_config()).priority(priority);
        let mut spy = PrioritySpy {
            expected: priority,
            inner: ShardedScanBackend::auto(),
            calls: 0,
        };
        let resp = service.submit_with(&req, &mut spy).unwrap();
        assert!(resp.result.total_frequent() > 0);
        assert!(spy.calls > 0);
    }
    assert_eq!(service.in_flight(), 0);
    assert_eq!(service.pending(), 0);
}

/// Counts executor invocations — the instrument for "one union scan per
/// level, not K solo runs" (same shape as the spy in `tests/comining.rs`).
#[derive(Default)]
struct ScanSpy {
    inner: temporal_mining::baselines::ActiveSetBackend,
    calls: usize,
}

impl Executor for ScanSpy {
    fn execute(&mut self, req: &CountRequest<'_>) -> Result<Counts, BackendError> {
        self.calls += 1;
        self.inner.execute(req)
    }

    fn name(&self) -> &str {
        "scan-spy"
    }
}

/// Blocks inside its first scan until released — pins the admission gate's
/// only slot while other requests pile up behind it.
struct GateHolder {
    inner: temporal_mining::baselines::ActiveSetBackend,
    started: Arc<(std::sync::Mutex<bool>, std::sync::Condvar)>,
    release: Arc<(std::sync::Mutex<bool>, std::sync::Condvar)>,
}

impl Executor for GateHolder {
    fn execute(&mut self, req: &CountRequest<'_>) -> Result<Counts, BackendError> {
        {
            let (flag, cv) = &*self.started;
            *flag.lock().unwrap() = true;
            cv.notify_all();
        }
        let (flag, cv) = &*self.release;
        let mut go = flag.lock().unwrap();
        while !*go {
            go = cv.wait(go).unwrap();
        }
        drop(go);
        self.inner.execute(req)
    }

    fn name(&self) -> &str {
        "gate-holder"
    }
}

#[test]
fn saturated_gate_fuses_queued_requests_into_one_union_scan_per_level() {
    // One in-flight slot, held hostage by a request (over a *different*
    // database) blocked inside its scan. K = 3 same-database requests then
    // pile up: the first queues at the gate as a batch leader; the other two
    // park in the waiting room holding NO admission slot. When the gate
    // frees, the whole batch is admitted as one unit and served by one union
    // scan per level — not 3 serialized solo runs.
    let service = Arc::new(MiningService::new(ServiceConfig {
        workers: 2,
        max_in_flight: 1,
        comine_window: std::time::Duration::from_millis(300),
        comine_max_batch: 3,
        ..Default::default()
    }));
    let db = Arc::new(markov_letters(15_000, 43, 0.6));
    let other_db = Arc::new(markov_letters(8_000, 7, 0.5));
    let configs = [
        mine_config(),
        MinerConfig {
            alpha: 0.005,
            ..mine_config()
        },
        MinerConfig {
            alpha: 0.02,
            max_level: Some(3),
            ..mine_config()
        },
    ];
    let serial: Vec<MiningResult> = configs
        .iter()
        .map(|cfg| {
            Miner::new(*cfg)
                .mine(db.as_ref(), &mut SequentialBackend::default())
                .unwrap()
        })
        .collect();

    let started = Arc::new((std::sync::Mutex::new(false), std::sync::Condvar::new()));
    let release = Arc::new((std::sync::Mutex::new(false), std::sync::Condvar::new()));
    std::thread::scope(|s| {
        let holder = {
            let service = Arc::clone(&service);
            let req = MiningRequest::new(Arc::clone(&other_db), mine_config());
            let started = Arc::clone(&started);
            let release = Arc::clone(&release);
            s.spawn(move || {
                let mut holder = GateHolder {
                    inner: Default::default(),
                    started,
                    release,
                };
                service.submit_with(&req, &mut holder).unwrap()
            })
        };
        // The holder is inside its first scan: the only slot is taken.
        {
            let (flag, cv) = &*started;
            let mut up = flag.lock().unwrap();
            while !*up {
                up = cv.wait(up).unwrap();
            }
        }
        assert_eq!(service.in_flight(), 1);

        // The leader queues at the gate with an open batch on the board.
        let leader = {
            let service = Arc::clone(&service);
            let req = MiningRequest::new(Arc::clone(&db), configs[0]);
            s.spawn(move || {
                let mut spy = ScanSpy::default();
                let resp = service.submit_with(&req, &mut spy).unwrap();
                (resp, spy.calls)
            })
        };
        while service.open_batches() == 0 || service.pending() == 0 {
            std::thread::yield_now();
        }

        // Two more same-db requests join the queued leader's batch.
        let joiners: Vec<_> = configs[1..]
            .iter()
            .map(|cfg| {
                let service = Arc::clone(&service);
                let req = MiningRequest::new(Arc::clone(&db), *cfg);
                s.spawn(move || {
                    let mut spy = ScanSpy::default();
                    let resp = service.submit_with(&req, &mut spy).unwrap();
                    (resp, spy.calls)
                })
            })
            .collect();
        while service.waiting_joiners() < 2 {
            std::thread::yield_now();
        }
        // Joiners ride the leader's slot: nothing new at the gate.
        assert_eq!(service.in_flight(), 1, "joiners must not take slots");
        assert_eq!(service.pending(), 1, "only the leader queues at the gate");

        // Free the gate: the fused batch is admitted as one unit.
        {
            let (flag, cv) = &*release;
            *flag.lock().unwrap() = true;
            cv.notify_all();
        }
        holder.join().unwrap();

        let (leader_resp, leader_calls) = leader.join().unwrap();
        let deepest = serial.iter().map(|r| r.levels.len()).max().unwrap();
        let solo_scan_total: usize = serial.iter().map(|r| r.levels.len()).sum();
        assert_eq!(
            leader_calls, deepest,
            "expected exactly one union scan per level"
        );
        assert!(
            leader_calls < solo_scan_total,
            "fusion must beat {solo_scan_total} serialized solo scans"
        );
        assert_eq!(leader_resp.stats.cache, CacheOutcome::CoMined);
        assert_eq!(leader_resp.result, serial[0]);
        for (i, joiner) in joiners.into_iter().enumerate() {
            let (resp, calls) = joiner.join().unwrap();
            assert_eq!(calls, 0, "joiner {i}'s own executor must never run");
            assert_eq!(resp.stats.cache, CacheOutcome::CoMined, "joiner {i}");
            assert_eq!(resp.result, serial[i + 1], "joiner {i} diverged");
        }
    });
    let stats = service.stats();
    assert_eq!(stats.completed, 4);
    assert_eq!(stats.comining.batches, 1);
    assert_eq!(stats.comining.fused_requests, 3);
    assert_eq!(
        stats.comining.waiting_room_joins, 2,
        "both joiners joined while the leader was still queued"
    );
    assert_eq!(
        stats.comining.solo_fallbacks, 1,
        "the gate holder mined solo"
    );
}

#[test]
fn repeated_bundles_hit_the_co_session_cache_with_stable_buffers() {
    // The same two-config bundle fused twice: the second batch must take the
    // parked CoSession from the co-session cache and recompile in place —
    // the union scan executes against the *same* compiled allocation both
    // times — even though the bundle's members arrive in swapped order.
    let service = Arc::new(MiningService::new(ServiceConfig {
        workers: 2,
        max_in_flight: 4,
        comine_window: std::time::Duration::from_secs(5),
        comine_max_batch: 2,
        ..Default::default()
    }));
    let db = Arc::new(markov_letters(15_000, 17, 0.6));
    let cfg_a = mine_config();
    let cfg_b = MinerConfig {
        alpha: 0.01,
        ..mine_config()
    };

    // (result for cfg_a, result for cfg_b, leader's compiled addresses).
    let mut rounds: Vec<(MiningResult, MiningResult, Vec<usize>)> = Vec::new();
    for (round, (lead_cfg, join_cfg)) in [(cfg_a, cfg_b), (cfg_b, cfg_a)].into_iter().enumerate() {
        std::thread::scope(|s| {
            let leader = {
                let service = Arc::clone(&service);
                let req = MiningRequest::new(Arc::clone(&db), lead_cfg);
                s.spawn(move || {
                    let mut spy = AddressSpy::default();
                    let resp = service.submit_with(&req, &mut spy).unwrap();
                    (resp, spy.addrs)
                })
            };
            while service.open_batches() == 0 {
                std::thread::yield_now();
            }
            let joiner = {
                let service = Arc::clone(&service);
                let req = MiningRequest::new(Arc::clone(&db), join_cfg);
                s.spawn(move || service.submit(&req).unwrap())
            };
            let (lead_resp, addrs) = leader.join().unwrap();
            let join_resp = joiner.join().unwrap();
            assert_eq!(
                lead_resp.stats.cache,
                CacheOutcome::CoMined,
                "round {round}"
            );
            assert_eq!(
                join_resp.stats.cache,
                CacheOutcome::CoMined,
                "round {round}"
            );
            assert!(!addrs.is_empty());
            let (for_a, for_b) = if round == 0 {
                (lead_resp.result, join_resp.result)
            } else {
                (join_resp.result, lead_resp.result)
            };
            rounds.push((for_a, for_b, addrs));
        });
    }
    assert_eq!(
        rounds[0].2, rounds[1].2,
        "cached co-session's compiled union buffers moved across batches"
    );
    let serial_a = Miner::new(cfg_a)
        .mine(db.as_ref(), &mut SequentialBackend::default())
        .unwrap();
    let serial_b = Miner::new(cfg_b)
        .mine(db.as_ref(), &mut SequentialBackend::default())
        .unwrap();
    for (round, (for_a, for_b, _)) in rounds.iter().enumerate() {
        assert_eq!(*for_a, serial_a, "round {round} cfg_a diverged");
        assert_eq!(*for_b, serial_b, "round {round} cfg_b diverged");
    }
    let stats = service.stats();
    assert_eq!(stats.comining.batches, 2);
    assert_eq!(
        stats.co_cache.misses, 1,
        "first bundle plans the co-session"
    );
    assert_eq!(stats.co_cache.hits, 1, "second bundle must reuse it");
    assert_eq!(stats.co_cache.collisions, 0);
    assert_eq!(service.cached_co_sessions(), 1);
    // The solo session cache was never consulted for fused requests.
    assert_eq!(stats.cache.hits + stats.cache.misses, 0);
}

#[test]
fn fused_batches_vote_on_the_backend() {
    // Leader asks for Sharded, two joiners ask for MapReduce: the majority
    // wins and the override is counted — results stay bit-identical anyway.
    let service = Arc::new(MiningService::new(ServiceConfig {
        workers: 2,
        max_in_flight: 4,
        comine_window: std::time::Duration::from_secs(5),
        comine_max_batch: 3,
        ..Default::default()
    }));
    let db = Arc::new(markov_letters(12_000, 5, 0.6));
    let configs = [
        mine_config(),
        MinerConfig {
            alpha: 0.005,
            ..mine_config()
        },
        MinerConfig {
            alpha: 0.02,
            ..mine_config()
        },
    ];
    let serial: Vec<MiningResult> = configs
        .iter()
        .map(|cfg| {
            Miner::new(*cfg)
                .mine(db.as_ref(), &mut SequentialBackend::default())
                .unwrap()
        })
        .collect();
    std::thread::scope(|s| {
        let leader = {
            let service = Arc::clone(&service);
            let req =
                MiningRequest::new(Arc::clone(&db), configs[0]).backend(BackendChoice::Sharded);
            s.spawn(move || service.submit(&req).unwrap())
        };
        while service.open_batches() == 0 {
            std::thread::yield_now();
        }
        let joiners: Vec<_> = configs[1..]
            .iter()
            .map(|cfg| {
                let service = Arc::clone(&service);
                let req =
                    MiningRequest::new(Arc::clone(&db), *cfg).backend(BackendChoice::MapReduce);
                s.spawn(move || service.submit(&req).unwrap())
            })
            .collect();
        assert_eq!(leader.join().unwrap().result, serial[0]);
        for (i, joiner) in joiners.into_iter().enumerate() {
            assert_eq!(joiner.join().unwrap().result, serial[i + 1], "joiner {i}");
        }
    });
    let stats = service.stats();
    assert_eq!(stats.comining.batches, 1);
    assert_eq!(stats.comining.fused_requests, 3);
    assert_eq!(
        stats.comining.backend_votes_overridden, 1,
        "two MapReduce votes must outvote the Sharded leader"
    );
}
