//! Serving-layer conformance: the multi-tenant `MiningService` must be
//! *observationally identical* to serial mining under any concurrency.
//!
//! * 16 concurrent clients over one shared pool, mixed workloads (Markov,
//!   spike-train, market-basket) and mixed backends — every response
//!   bit-identical to a serial `Miner::mine` of the same request;
//! * session-cache hits skip session planning (snapshot, shard bounds, buffer
//!   allocation): the compiled candidate buffers keep the **same address**
//!   across requests (asserted with a spy executor);
//! * cache hit/miss/eviction semantics and db-hash collision safety — two
//!   databases with an equal hash-relevant prefix but different content never
//!   share a session;
//! * session-cache × co-mining interaction: a request whose session is
//!   parked may still join a fused batch, and the union scan never touches
//!   parked sessions — their compiled buffers keep the same address across a
//!   batch (the bit-identity of fused results themselves is proven in
//!   `tests/comining.rs`);
//! * priority + admission-limit plumbing end to end.

use std::sync::Arc;
use temporal_mining::core::engine::CompiledCandidates;
use temporal_mining::core::miner::SequentialBackend;
use temporal_mining::prelude::*;
use temporal_mining::serve::CacheOutcome;
use temporal_mining::workloads::{
    basket::{market_basket, BasketConfig},
    markov_letters,
    spikes::{spike_trains, SpikeTrainConfig},
};

fn mixed_workloads() -> Vec<Arc<EventDb>> {
    vec![
        Arc::new(markov_letters(30_000, 11, 0.7)),
        Arc::new(spike_trains(&SpikeTrainConfig {
            neurons: 26,
            duration_ms: 20_000.0,
            base_rate_hz: 8.0,
            ..Default::default()
        })),
        Arc::new(market_basket(&BasketConfig::default())),
    ]
}

fn serve_config(workers: usize) -> ServiceConfig {
    ServiceConfig {
        workers,
        ..Default::default()
    }
}

fn mine_config() -> MinerConfig {
    MinerConfig {
        alpha: 0.001,
        max_level: Some(2),
        ..Default::default()
    }
}

#[test]
fn sixteen_concurrent_clients_match_serial_mining_bit_for_bit() {
    let dbs = mixed_workloads();
    let config = mine_config();
    // Serial ground truth, one per workload, computed without the service.
    let serial: Vec<MiningResult> = dbs
        .iter()
        .map(|db| {
            Miner::new(config)
                .mine(db.as_ref(), &mut SequentialBackend::default())
                .unwrap()
        })
        .collect();

    let service = Arc::new(MiningService::new(ServiceConfig {
        workers: 4,
        max_in_flight: 16,
        ..Default::default()
    }));
    let backends = [
        BackendChoice::Sharded,
        BackendChoice::MapReduce,
        BackendChoice::ActiveSet,
        BackendChoice::Sequential,
    ];
    std::thread::scope(|s| {
        for client in 0..16usize {
            let service = Arc::clone(&service);
            let dbs = dbs.clone();
            let serial = &serial;
            s.spawn(move || {
                for round in 0..3usize {
                    let which = (client + round) % dbs.len();
                    let req = MiningRequest::new(Arc::clone(&dbs[which]), config)
                        .backend(backends[(client + round) % backends.len()]);
                    let resp = service.submit(&req).expect("request failed");
                    assert_eq!(
                        resp.result, serial[which],
                        "client {client} round {round} diverged from serial mining"
                    );
                }
            });
        }
    });

    let stats = service.stats();
    assert_eq!(stats.completed, 48);
    assert_eq!(stats.failed + stats.rejected, 0);
    // 3 workloads, one planned session each; every other request could hit.
    assert!(stats.cache.misses as usize >= dbs.len());
    assert!(
        stats.cache.hits > 0,
        "expected warm-session reuse: {stats:?}"
    );
    assert_eq!(stats.cache.collisions, 0);
}

/// Records the address of every compiled candidate set it executes against.
#[derive(Default)]
struct AddressSpy {
    inner: temporal_mining::baselines::ActiveSetBackend,
    addrs: Vec<usize>,
}

impl Executor for AddressSpy {
    fn execute(&mut self, req: &CountRequest<'_>) -> Result<Counts, BackendError> {
        self.addrs
            .push(req.compiled() as *const CompiledCandidates as usize);
        self.inner.execute(req)
    }

    fn name(&self) -> &str {
        "address-spy"
    }
}

#[test]
fn cache_hits_reuse_the_same_compiled_buffers() {
    let service = MiningService::new(serve_config(2));
    let db = Arc::new(markov_letters(20_000, 5, 0.6));
    let req = MiningRequest::new(Arc::clone(&db), mine_config());

    let mut spy = AddressSpy::default();
    let cold = service.submit_with(&req, &mut spy).unwrap();
    assert_eq!(cold.stats.cache, CacheOutcome::Miss);
    assert!(!spy.addrs.is_empty());
    let cold_addrs = std::mem::take(&mut spy.addrs);

    // Second, third request: cache hits recompile in place into the parked
    // session's buffers — every level executes against the very same
    // compiled allocation the first request planned.
    for round in 0..2 {
        let warm = service.submit_with(&req, &mut spy).unwrap();
        assert_eq!(warm.stats.cache, CacheOutcome::Hit, "round {round}");
        assert_eq!(
            spy.addrs, cold_addrs,
            "round {round}: compiled buffers moved across cached requests"
        );
        assert_eq!(warm.result, cold.result);
        spy.addrs.clear();
    }
}

#[test]
fn equal_prefix_different_content_never_shares_a_session() {
    // Two databases identical in their first 20k symbols, diverging after:
    // any prefix-only or lazy hashing would assign them one key. They must
    // mine to different results and occupy distinct cache entries.
    let service = MiningService::new(serve_config(2));
    let prefix = "ABCD".repeat(5_000);
    let a = Arc::new(
        EventDb::from_str_symbols(&Alphabet::latin26(), &(prefix.clone() + &"XY".repeat(500)))
            .unwrap(),
    );
    let b = Arc::new(
        EventDb::from_str_symbols(&Alphabet::latin26(), &(prefix + &"YX".repeat(500))).unwrap(),
    );
    let cfg = mine_config();

    let ra = service
        .submit(&MiningRequest::new(Arc::clone(&a), cfg))
        .unwrap();
    let rb = service
        .submit(&MiningRequest::new(Arc::clone(&b), cfg))
        .unwrap();
    assert_eq!(rb.stats.cache, CacheOutcome::Miss);
    assert_ne!(
        ra.result, rb.result,
        "different content must mine differently"
    );
    assert_ne!(ra.stats.key, rb.stats.key, "content hash ignored the tail");
    assert_eq!(service.cached_sessions(), 2);

    // Each db re-hits its own session, and the results replay exactly.
    let ra2 = service.submit(&MiningRequest::new(a, cfg)).unwrap();
    let rb2 = service.submit(&MiningRequest::new(b, cfg)).unwrap();
    assert_eq!(ra2.stats.cache, CacheOutcome::Hit);
    assert_eq!(rb2.stats.cache, CacheOutcome::Hit);
    assert_eq!(ra.result, ra2.result);
    assert_eq!(rb.result, rb2.result);
    assert_eq!(service.stats().cache.collisions, 0);
}

#[test]
fn eviction_makes_room_and_evicted_requests_miss_again() {
    let service = MiningService::new(ServiceConfig {
        workers: 1,
        cache_capacity: 2,
        ..Default::default()
    });
    let cfg = mine_config();
    let dbs = mixed_workloads();
    for db in &dbs {
        service
            .submit(&MiningRequest::new(Arc::clone(db), cfg))
            .unwrap();
    }
    let stats = service.stats();
    assert_eq!(service.cached_sessions(), 2);
    assert_eq!(stats.cache.evictions, 1);
    // The first workload was evicted (LRU): resubmitting misses, re-plans,
    // and still produces the right result.
    let again = service
        .submit(&MiningRequest::new(Arc::clone(&dbs[0]), cfg))
        .unwrap();
    assert_eq!(again.stats.cache, CacheOutcome::Miss);
    // The most-recent workload is still parked.
    let warm = service
        .submit(&MiningRequest::new(Arc::clone(&dbs[2]), cfg))
        .unwrap();
    assert_eq!(warm.stats.cache, CacheOutcome::Hit);
}

#[test]
fn cache_hits_may_join_a_batch_and_parked_sessions_stay_stable_after_union_scans() {
    // Window 300ms: lone requests pay the window then fall back to the solo
    // cache path; concurrent same-db requests fuse. max_batch 2 closes the
    // staged batch immediately.
    let service = Arc::new(MiningService::new(ServiceConfig {
        workers: 2,
        max_in_flight: 4,
        comine_window: std::time::Duration::from_millis(300),
        comine_max_batch: 2,
        ..Default::default()
    }));
    let db = Arc::new(markov_letters(15_000, 41, 0.6));
    let cfg_a = mine_config();
    let cfg_b = MinerConfig {
        alpha: 0.01,
        ..mine_config()
    };
    let req_a = MiningRequest::new(Arc::clone(&db), cfg_a);

    // Park a session for (db, cfg_a) and record its compiled-buffer address.
    let mut spy = AddressSpy::default();
    let cold = service.submit_with(&req_a, &mut spy).unwrap();
    assert_eq!(cold.stats.cache, CacheOutcome::Miss);
    let parked_addrs = std::mem::take(&mut spy.addrs);
    assert!(!parked_addrs.is_empty());

    // A request whose session is parked (it *would* be a cache hit) can
    // still join a batch: submit cfg_a and cfg_b concurrently. Both must be
    // served from the fused scan, bit-identical to serial mining.
    let serial_a = Miner::new(cfg_a)
        .mine(db.as_ref(), &mut SequentialBackend::default())
        .unwrap();
    let serial_b = Miner::new(cfg_b)
        .mine(db.as_ref(), &mut SequentialBackend::default())
        .unwrap();
    assert_eq!(cold.result, serial_a);
    std::thread::scope(|s| {
        let leader = {
            let service = Arc::clone(&service);
            let req = req_a.clone();
            s.spawn(move || service.submit(&req).unwrap())
        };
        while service.open_batches() == 0 {
            std::thread::yield_now();
        }
        let joiner = {
            let service = Arc::clone(&service);
            let req = MiningRequest::new(Arc::clone(&db), cfg_b);
            s.spawn(move || service.submit(&req).unwrap())
        };
        let la = leader.join().unwrap();
        let jb = joiner.join().unwrap();
        assert_eq!(la.stats.cache, CacheOutcome::CoMined);
        assert_eq!(jb.stats.cache, CacheOutcome::CoMined);
        assert_eq!(la.result, serial_a);
        assert_eq!(jb.result, serial_b);
    });
    let stats = service.stats();
    assert_eq!(stats.comining.batches, 1);
    assert_eq!(stats.comining.fused_requests, 2);

    // The union scan had its own compiled buffers: the parked (db, cfg_a)
    // session was never touched, so the next solo request hits the cache and
    // executes against the *same* compiled allocation as before the batch.
    let warm = service.submit_with(&req_a, &mut spy).unwrap();
    assert_eq!(warm.stats.cache, CacheOutcome::Hit);
    assert_eq!(warm.result, serial_a);
    assert_eq!(
        spy.addrs, parked_addrs,
        "union scan moved a parked session's compiled buffers"
    );
}

/// Asserts the request's scheduling class reaches every `CountRequest` (the
/// lane the parallel executors submit their pool jobs on).
struct PrioritySpy {
    expected: Priority,
    inner: ShardedScanBackend,
    calls: usize,
}

impl Executor for PrioritySpy {
    fn execute(&mut self, req: &CountRequest<'_>) -> Result<Counts, BackendError> {
        assert_eq!(req.priority(), self.expected, "job-lane priority lost");
        self.calls += 1;
        self.inner.execute(req)
    }

    fn name(&self) -> &str {
        "priority-spy"
    }
}

#[test]
fn priorities_and_admission_are_wired_through() {
    let service = MiningService::new(ServiceConfig {
        workers: 2,
        max_in_flight: 1,
        ..Default::default()
    });
    let db = Arc::new(markov_letters(8_000, 3, 0.5));
    for priority in [Priority::High, Priority::Normal] {
        let req = MiningRequest::new(Arc::clone(&db), mine_config()).priority(priority);
        let mut spy = PrioritySpy {
            expected: priority,
            inner: ShardedScanBackend::auto(),
            calls: 0,
        };
        let resp = service.submit_with(&req, &mut spy).unwrap();
        assert!(resp.result.total_frequent() > 0);
        assert!(spy.calls > 0);
    }
    assert_eq!(service.in_flight(), 0);
    assert_eq!(service.pending(), 0);
}
