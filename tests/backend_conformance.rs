//! Backend conformance suite for the plan/execute counting API.
//!
//! Every CPU backend and all four simulated GPU kernels run through the *new*
//! [`Executor`] trait against one shared [`MiningSession`]:
//!
//! * bit-identical counts on the paper-database slice;
//! * bit-identical counts on adversarial inputs — empty candidate set,
//!   single-symbol alphabet (repeated-item episodes), worker counts 1..=8,
//!   and proptest-generated streams/candidate sets;
//! * candidates compile exactly once per level (session compile counter +
//!   stable compiled-buffer address across levels);
//! * identical `Result` error behavior on malformed backends, whichever entry
//!   point (session or `Miner`) drives them.

use proptest::prelude::*;
use temporal_mining::core::candidate::permutations;
use temporal_mining::core::count::count_episodes_naive;
use temporal_mining::prelude::*;
use temporal_mining::workloads::paper_database_scaled;

/// All CPU executors under test, with a label.
fn cpu_executors() -> Vec<(String, Box<dyn Executor>)> {
    let mut v: Vec<(String, Box<dyn Executor>)> = vec![
        ("cpu-serial-scan".into(), Box::new(SerialScanBackend)),
        (
            "cpu-active-set".into(),
            Box::new(ActiveSetBackend::default()),
        ),
        (
            "cpu-sharded-auto".into(),
            Box::new(ShardedScanBackend::auto()),
        ),
        (
            "cpu-mapreduce-auto".into(),
            Box::new(MapReduceBackend::auto()),
        ),
    ];
    for workers in 1..=8usize {
        v.push((
            format!("cpu-sharded-w{workers}"),
            Box::new(ShardedScanBackend::new(workers)),
        ));
        v.push((
            format!("cpu-mapreduce-w{workers}"),
            Box::new(MapReduceBackend::new(workers)),
        ));
    }
    v
}

/// The four GPU kernels as executors, plus the persistent device pipeline:
/// dispatching (serve-time CPU-vs-GPU choice per level), pinned to the GPU
/// path, and modeling multi-tenant union launches with K ∈ {2, 4, 8}.
fn gpu_executors() -> Vec<(String, Box<dyn Executor>)> {
    let mut v: Vec<(String, Box<dyn Executor>)> = Algorithm::ALL
        .iter()
        .map(|&algo| {
            (
                format!("{algo}"),
                Box::new(GpuBackend::new(algo, 128, DeviceConfig::geforce_gtx_280()))
                    as Box<dyn Executor>,
            )
        })
        .collect();
    v.push((
        "gpu-pipeline-dispatch".into(),
        Box::new(GpuPipelineBackend::with_defaults(
            DeviceConfig::geforce_gtx_280(),
        )),
    ));
    v.push((
        "gpu-pipeline-forced".into(),
        Box::new(GpuPipelineBackend::with_defaults(DeviceConfig::geforce_gtx_280()).force_gpu()),
    ));
    for k in [2u32, 4, 8] {
        v.push((
            format!("gpu-pipeline-union-k{k}"),
            Box::new(
                GpuPipelineBackend::with_defaults(DeviceConfig::geforce_gtx_280())
                    .tenants(k)
                    .force_gpu(),
            ),
        ));
    }
    v
}

fn assert_conformance(db: &temporal_mining::core::EventDb, episodes: &[Episode], workers: usize) {
    let reference = count_episodes_naive(db, episodes);
    let mut session = MiningSession::builder(db).workers(workers).build();
    for (name, mut ex) in cpu_executors().into_iter().chain(gpu_executors()) {
        let counts = session
            .count_candidates(episodes, ex.as_mut())
            .unwrap_or_else(|e| panic!("{name} failed: {e}"));
        assert_eq!(counts, reference, "{name} disagrees with the reference");
    }
}

#[test]
fn conformance_on_paper_database_slice() {
    let db = paper_database_scaled(0.05);
    for level in [1usize, 2] {
        assert_conformance(&db, &permutations(db.alphabet(), level), 4);
    }
}

#[test]
fn conformance_on_empty_candidate_set() {
    let db = paper_database_scaled(0.02);
    assert_conformance(&db, &[], 3);
}

#[test]
fn conformance_on_single_symbol_alphabet() {
    // Degenerate universe: one symbol, so every multi-item episode has
    // repeated items — the exact-composition fallback's regime.
    let ab = Alphabet::numbered(1).unwrap();
    let db = temporal_mining::core::EventDb::new(ab, vec![0u8; 9_000]).unwrap();
    let episodes: Vec<Episode> = (1..=4)
        .map(|l| Episode::new(vec![0u8; l]).unwrap())
        .collect();
    for workers in 1..=8usize {
        assert_conformance(&db, &episodes, workers);
    }
}

/// An executor that delegates to an inner backend but records the address of
/// every compiled candidate set it is handed.
#[derive(Default)]
struct SpyExecutor<E> {
    inner: E,
    compiled_addrs: Vec<usize>,
    calls: usize,
}

impl<E: Executor> Executor for SpyExecutor<E> {
    fn execute(&mut self, req: &CountRequest<'_>) -> Result<Counts, BackendError> {
        self.compiled_addrs
            .push(req.compiled() as *const CompiledCandidates as usize);
        self.calls += 1;
        self.inner.execute(req)
    }

    fn name(&self) -> &str {
        "spy"
    }
}

#[test]
fn session_compiles_exactly_once_per_level_into_the_same_buffers() {
    let db = paper_database_scaled(0.02);
    let mut session = MiningSession::builder(&db)
        .config(MinerConfig {
            alpha: 0.0005,
            max_level: Some(3),
            ..Default::default()
        })
        .build();
    let mut spy = SpyExecutor::<ActiveSetBackend>::default();
    let result = session.mine_with(&mut spy, |_| {}).unwrap();
    assert!(result.levels.len() >= 2, "want a multi-level run");
    // One execute — and exactly one compile — per level.
    assert_eq!(spy.calls, result.levels.len());
    assert_eq!(session.compiles(), result.levels.len());
    // The compiled set is recompiled *in place*: every level saw the same
    // allocation (Arc::make_mut never had to clone).
    assert!(
        spy.compiled_addrs.windows(2).all(|w| w[0] == w[1]),
        "compiled buffers were reallocated across levels: {:?}",
        spy.compiled_addrs
    );
    // A second mining run against the same session keeps reusing them.
    let addr = spy.compiled_addrs[0];
    spy.compiled_addrs.clear();
    session.mine_with(&mut spy, |_| {}).unwrap();
    assert!(spy.compiled_addrs.iter().all(|&a| a == addr));
}

#[test]
fn pooled_executors_release_their_shared_handles_between_levels() {
    // Pool workers ship Arc handles to the compiled set; they must all be
    // dropped by the time execute returns, or the next level's in-place
    // recompile would silently degrade to a deep clone (new address).
    let db = paper_database_scaled(0.1); // long enough to actually shard
    let mut session = MiningSession::builder(&db)
        .config(MinerConfig {
            alpha: 0.0005,
            max_level: Some(2),
            ..Default::default()
        })
        .workers(4)
        .build();
    let mut spy = SpyExecutor {
        inner: ShardedScanBackend::new(4),
        compiled_addrs: Vec::new(),
        calls: 0,
    };
    session.mine_with(&mut spy, |_| {}).unwrap();
    session.mine_with(&mut spy, |_| {}).unwrap();
    assert!(spy.calls >= 4);
    assert!(
        spy.compiled_addrs.windows(2).all(|w| w[0] == w[1]),
        "a pool worker held its Arc past execute — compiled buffers were \
         cloned instead of recompiled in place: {:?}",
        spy.compiled_addrs
    );
}

/// A malformed backend: returns one count too many.
struct WrongLengthBackend;

impl Executor for WrongLengthBackend {
    fn execute(&mut self, req: &CountRequest<'_>) -> Result<Counts, BackendError> {
        Ok(vec![0; req.candidates() + 1])
    }

    fn name(&self) -> &str {
        "wrong-length"
    }
}

/// A backend that fails outright.
struct FailingBackend;

impl Executor for FailingBackend {
    fn execute(&mut self, _req: &CountRequest<'_>) -> Result<Counts, BackendError> {
        Err(BackendError::Failed("boom".into()))
    }

    fn name(&self) -> &str {
        "failing"
    }
}

#[test]
fn malformed_backends_error_identically_everywhere() {
    let db = paper_database_scaled(0.02);
    let expected_wrong_length = MineError {
        level: 1,
        backend: "wrong-length".into(),
        source: BackendError::CountLength {
            expected: 26,
            got: 27,
        },
    };
    let expected_failed = MineError {
        level: 1,
        backend: "failing".into(),
        source: BackendError::Failed("boom".into()),
    };

    // Session-driven counting and the Miner driver surface the *same* error
    // value — no asserts, no panics, one Result story.
    let mut session = MiningSession::builder(&db).build();
    let eps = permutations(db.alphabet(), 1);
    assert_eq!(
        session.count_candidates(&eps, &mut WrongLengthBackend),
        Err(expected_wrong_length.clone())
    );
    assert_eq!(
        session.mine(&mut WrongLengthBackend),
        Err(expected_wrong_length.clone())
    );
    assert_eq!(
        Miner::new(MinerConfig::default()).mine(&db, &mut WrongLengthBackend),
        Err(expected_wrong_length)
    );
    assert_eq!(
        session.mine(&mut FailingBackend),
        Err(expected_failed.clone())
    );
    assert_eq!(
        Miner::new(MinerConfig::default()).mine(&db, &mut FailingBackend),
        Err(expected_failed)
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// CPU executors agree with the naive reference on arbitrary streams,
    /// arbitrary (possibly repeated-item, possibly empty) candidate sets over
    /// alphabets down to a single symbol, and every worker count 1..=8 —
    /// including streams long enough to actually shard across the pool.
    #[test]
    fn cpu_executors_agree_on_adversarial_inputs(
        alphabet_len in 1usize..4,
        raw_data in proptest::collection::vec(0u8..3, 0..6000),
        raw_eps in proptest::collection::vec(
            proptest::collection::vec(0u8..3, 1..4),
            0..10,
        ),
        workers in 1usize..9,
    ) {
        let ab = Alphabet::numbered(alphabet_len).unwrap();
        let data: Vec<u8> = raw_data
            .into_iter()
            .map(|s| s % alphabet_len as u8)
            .collect();
        let db = temporal_mining::core::EventDb::new(ab, data).unwrap();
        let episodes: Vec<Episode> = raw_eps
            .into_iter()
            .map(|v| {
                Episode::new(v.into_iter().map(|s| s % alphabet_len as u8).collect()).unwrap()
            })
            .collect();
        let reference = count_episodes_naive(&db, &episodes);
        let mut session = MiningSession::builder(&db).workers(workers).build();
        let mut executors: Vec<(&str, Box<dyn Executor>)> = vec![
            ("serial", Box::new(SerialScanBackend)),
            ("active", Box::new(ActiveSetBackend::default())),
            ("sharded", Box::new(ShardedScanBackend::new(workers))),
            ("sharded-auto", Box::new(ShardedScanBackend::auto())),
            ("mapreduce", Box::new(MapReduceBackend::new(workers))),
        ];
        for (name, ex) in &mut executors {
            let counts = session.count_candidates(&episodes, ex.as_mut()).unwrap();
            prop_assert_eq!(&counts, &reference, "{} disagrees", name);
        }
    }
}
