//! Loopback end-to-end suite for the TCP front-end: everything the
//! in-process serving layer guarantees must survive a real socket.
//!
//! * 16 concurrent TCP clients across 3 tenants, mixed workloads, configs,
//!   and backends — every wire response **bit-identical** to a serial
//!   `Miner::mine` of the same request, compared through the same encoder;
//! * same-database requests landing within the co-mine window **fuse over
//!   the wire** (leader queued at a saturated gate, joiners in the waiting
//!   room), proven via `"stats"`: `comining.batches`,
//!   `comining.waiting_room_joins`;
//! * session-cache hits keep **stable compiled-buffer addresses across
//!   connections** (an executor-factory spy records every address);
//! * a 10 ms-deadline request against a slow executor is **cancelled
//!   mid-level-loop**: later levels never execute, the slot is released,
//!   and the client gets the typed `"deadline"` error;
//! * tenant A exhausting its in-flight quota cannot starve tenant B.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use tdm_server::client::{mine_request, stats_request};
use tdm_server::json::Value;
use tdm_server::{wire, Client, Server, ServerConfig, TenantConfig};
use temporal_mining::prelude::*;
use temporal_mining::workloads::{markov_letters, uniform_letters};

const TENANTS: [(&str, &str); 3] = [("acme", "key-a"), ("beta", "key-b"), ("corp", "key-c")];

fn tenant_configs() -> Vec<TenantConfig> {
    TENANTS
        .iter()
        .map(|(name, key)| TenantConfig::new(*name, *key))
        .collect()
}

/// Renders a database back to the wire's letter spelling.
fn letters(db: &EventDb) -> String {
    db.symbols().iter().map(|&id| (b'A' + id) as char).collect()
}

/// The serial ground truth, encoded through the same wire encoder the
/// server uses — equality of the encoded text is bit-identity.
fn serial_result_json(db: &EventDb, config: MinerConfig) -> String {
    let result = Miner::new(config)
        .mine(db, &mut temporal_mining::core::SequentialBackend::default())
        .unwrap();
    wire::mining_result_value(&result, &Alphabet::latin26()).encode()
}

#[test]
fn sixteen_concurrent_clients_across_three_tenants_are_bit_identical() {
    let server = Server::bind(ServerConfig {
        handler_threads: 16,
        backlog: 16,
        service: temporal_mining::serve::ServiceConfig {
            workers: 4,
            ..Default::default()
        },
        tenants: tenant_configs(),
        ..Default::default()
    })
    .unwrap();
    let addr = server.addr();

    let backends = [
        "sharded",
        "mapreduce",
        "activeset",
        "sequential",
        "serialscan",
    ];
    let alphas = [0.01, 0.02, 0.05, 0.1];
    let cases: Vec<(EventDb, MinerConfig, &str, &str, &str)> = (0..16)
        .map(|i| {
            let db = markov_letters(3_000 + 500 * i, i as u64, 0.6);
            let config = MinerConfig {
                alpha: alphas[i % alphas.len()],
                max_level: Some(3),
                ..Default::default()
            };
            let (tenant, key) = TENANTS[i % TENANTS.len()];
            (db, config, backends[i % backends.len()], tenant, key)
        })
        .collect();

    std::thread::scope(|s| {
        let handles: Vec<_> = cases
            .iter()
            .map(|(db, config, backend, tenant, key)| {
                s.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    let reply = client
                        .call(&mine_request(
                            tenant,
                            key,
                            &letters(db),
                            config.alpha,
                            config.max_level,
                            Some(backend),
                            None,
                            None,
                        ))
                        .unwrap();
                    assert_eq!(
                        reply.get("type").and_then(Value::as_str),
                        Some("mine_result"),
                        "unexpected reply: {}",
                        reply.encode()
                    );
                    reply.get("result").unwrap().encode()
                })
            })
            .collect();
        for (handle, (db, config, backend, tenant, _)) in handles.into_iter().zip(&cases) {
            let wire_json = handle.join().unwrap();
            assert_eq!(
                wire_json,
                serial_result_json(db, *config),
                "{tenant}/{backend} diverged from serial mining"
            );
        }
    });

    let stats = server.service().stats();
    assert_eq!(stats.completed, 16);
    assert_eq!(stats.failed + stats.rejected + stats.cancelled, 0);
    server.shutdown();
}

#[test]
fn same_db_requests_fuse_over_the_wire_and_stats_show_it() {
    // One admission slot: a blocker holds it, the fused batch's leader
    // queues at the gate, and the joiners join in the waiting room.
    let server = Server::bind(ServerConfig {
        handler_threads: 8,
        service: temporal_mining::serve::ServiceConfig {
            workers: 1,
            max_in_flight: 1,
            comine_window: Duration::from_millis(300),
            comine_max_batch: 4,
            ..Default::default()
        },
        tenants: tenant_configs(),
        ..Default::default()
    })
    .unwrap();
    let addr = server.addr();

    let blocker_db = uniform_letters(40_000, 7);
    let fused_db = markov_letters(8_000, 11, 0.6);
    let fused_alphas = [0.05, 0.02, 0.01];

    std::thread::scope(|s| {
        // The blocker leads its own (solo) batch and holds the only slot.
        let blocker = s.spawn(|| {
            let mut client = Client::connect(addr).unwrap();
            client
                .call(&mine_request(
                    "acme",
                    "key-a",
                    &letters(&blocker_db),
                    0.02,
                    Some(3),
                    None,
                    None,
                    None,
                ))
                .unwrap()
        });
        let polling = Instant::now();
        while server.service().open_batches() < 1 {
            assert!(
                polling.elapsed() < Duration::from_secs(10),
                "blocker never led"
            );
            std::thread::yield_now();
        }

        // The fused batch's leader registers on the board while queued.
        let leader = s.spawn(|| {
            let mut client = Client::connect(addr).unwrap();
            client
                .call(&mine_request(
                    "beta",
                    "key-b",
                    &letters(&fused_db),
                    fused_alphas[0],
                    Some(3),
                    None,
                    None,
                    None,
                ))
                .unwrap()
        });
        let polling = Instant::now();
        while server.service().open_batches() < 2 {
            assert!(
                polling.elapsed() < Duration::from_secs(10),
                "leader never led"
            );
            std::thread::yield_now();
        }

        // Two more tenants' requests for the same database join it.
        let joiners: Vec<_> = fused_alphas[1..]
            .iter()
            .enumerate()
            .map(|(i, &alpha)| {
                let fused_db = &fused_db;
                s.spawn(move || {
                    let (tenant, key) = TENANTS[(i + 2) % TENANTS.len()];
                    let mut client = Client::connect(addr).unwrap();
                    client
                        .call(&mine_request(
                            tenant,
                            key,
                            &letters(fused_db),
                            alpha,
                            Some(3),
                            None,
                            None,
                            None,
                        ))
                        .unwrap()
                })
            })
            .collect();

        assert_eq!(
            blocker.join().unwrap().get("type").and_then(Value::as_str),
            Some("mine_result")
        );
        let fused_replies: Vec<Value> = std::iter::once(leader.join().unwrap())
            .chain(joiners.into_iter().map(|j| j.join().unwrap()))
            .collect();
        for (reply, alpha) in fused_replies.iter().zip(fused_alphas) {
            assert_eq!(
                reply.get("cache").and_then(Value::as_str),
                Some("comined"),
                "alpha {alpha} was not served from the fused scan: {}",
                reply.encode()
            );
            let config = MinerConfig {
                alpha,
                max_level: Some(3),
                ..Default::default()
            };
            assert_eq!(
                reply.get("result").unwrap().encode(),
                serial_result_json(&fused_db, config),
                "fused result for alpha {alpha} diverged from serial mining"
            );
        }
    });

    // The proof that fusion happened *over the wire*, read over the wire.
    let mut client = Client::connect(addr).unwrap();
    let stats = client.call(&stats_request("acme", "key-a")).unwrap();
    let comining = stats
        .get("service")
        .and_then(|s| s.get("comining"))
        .expect("stats carry comining counters");
    assert_eq!(comining.get("batches").and_then(Value::as_u64), Some(1));
    assert_eq!(
        comining.get("fused_requests").and_then(Value::as_u64),
        Some(3)
    );
    assert_eq!(
        comining.get("waiting_room_joins").and_then(Value::as_u64),
        Some(2),
        "joins should have landed while the leader was queued at the gate"
    );
    server.shutdown();
}

/// An executor that counts for real but records every compiled-candidate
/// address; each request's trace lands in the shared log when the executor
/// drops.
struct AddressSpy {
    inner: ActiveSetBackend,
    addrs: Vec<usize>,
    log: Arc<Mutex<Vec<Vec<usize>>>>,
}

impl Executor for AddressSpy {
    fn execute(&mut self, req: &CountRequest<'_>) -> Result<Counts, BackendError> {
        self.addrs
            .push(req.compiled() as *const CompiledCandidates as usize);
        self.inner.execute(req)
    }
    fn name(&self) -> &str {
        "address-spy"
    }
}

impl Drop for AddressSpy {
    fn drop(&mut self) {
        self.log
            .lock()
            .unwrap()
            .push(std::mem::take(&mut self.addrs));
    }
}

#[test]
fn cache_hits_keep_stable_compiled_buffers_across_connections() {
    let log: Arc<Mutex<Vec<Vec<usize>>>> = Arc::new(Mutex::new(Vec::new()));
    let factory_log = Arc::clone(&log);
    let server = Server::bind(ServerConfig {
        service: temporal_mining::serve::ServiceConfig {
            workers: 2,
            ..Default::default()
        },
        tenants: tenant_configs(),
        executor_factory: Some(Arc::new(move || {
            Box::new(AddressSpy {
                inner: ActiveSetBackend::default(),
                addrs: Vec::new(),
                log: Arc::clone(&factory_log),
            })
        })),
        ..Default::default()
    })
    .unwrap();

    let db = markov_letters(12_000, 3, 0.6);
    let request = mine_request(
        "acme",
        "key-a",
        &letters(&db),
        0.02,
        Some(3),
        None,
        None,
        None,
    );

    // Same request over three *separate connections*: a miss, then hits.
    let mut outcomes = Vec::new();
    for _ in 0..3 {
        let mut client = Client::connect(server.addr()).unwrap();
        let reply = client.call(&request).unwrap();
        assert_eq!(
            reply.get("type").and_then(Value::as_str),
            Some("mine_result")
        );
        outcomes.push(
            reply
                .get("cache")
                .and_then(Value::as_str)
                .unwrap()
                .to_string(),
        );
        client.finish().unwrap();
    }
    assert_eq!(outcomes, ["miss", "hit", "hit"]);

    let traces = log.lock().unwrap();
    assert_eq!(traces.len(), 3);
    assert!(!traces[0].is_empty());
    assert_eq!(
        traces[1], traces[0],
        "compiled buffers moved between connections"
    );
    assert_eq!(
        traces[2], traces[0],
        "compiled buffers moved between connections"
    );
    server.shutdown();
}

/// Counts level executions and dawdles through each, so a short deadline
/// reliably expires between levels.
struct SlowSpy {
    delay: Duration,
    executes: Arc<AtomicUsize>,
}

impl Executor for SlowSpy {
    fn execute(&mut self, req: &CountRequest<'_>) -> Result<Counts, BackendError> {
        std::thread::sleep(self.delay);
        self.executes.fetch_add(1, Ordering::SeqCst);
        let mut scratch = CountScratch::new();
        Ok(req.compiled().count(req.stream(), &mut scratch))
    }
    fn name(&self) -> &str {
        "slow-spy"
    }
}

#[test]
fn deadline_cancels_mid_level_loop_over_the_wire() {
    let executes = Arc::new(AtomicUsize::new(0));
    let spy_executes = Arc::clone(&executes);
    let server = Server::bind(ServerConfig {
        service: temporal_mining::serve::ServiceConfig {
            workers: 1,
            max_in_flight: 1,
            ..Default::default()
        },
        tenants: tenant_configs(),
        executor_factory: Some(Arc::new(move || {
            Box::new(SlowSpy {
                delay: Duration::from_millis(40),
                executes: Arc::clone(&spy_executes),
            })
        })),
        ..Default::default()
    })
    .unwrap();

    let db = markov_letters(4_000, 9, 0.6);
    let mut client = Client::connect(server.addr()).unwrap();
    let reply = client
        .call(&mine_request(
            "acme",
            "key-a",
            &letters(&db),
            0.01,
            Some(6),
            None,
            None,
            Some(10), // 10ms deadline vs 40ms per level
        ))
        .unwrap();
    assert_eq!(reply.get("type").and_then(Value::as_str), Some("error"));
    assert_eq!(reply.get("code").and_then(Value::as_str), Some("deadline"));
    let cancelled_level = reply.get("level").and_then(Value::as_u64).unwrap();
    assert!(cancelled_level >= 1);
    // Later levels never executed: at most one scan fit the 10ms budget.
    assert!(executes.load(Ordering::SeqCst) <= 1);

    // The in-flight slot was released (max_in_flight=1: a leaked slot would
    // wedge this) and the parked session carries no stale token.
    let reply = client
        .call(&mine_request(
            "acme",
            "key-a",
            &letters(&db),
            0.01,
            Some(6),
            None,
            None,
            None,
        ))
        .unwrap();
    assert_eq!(
        reply.get("type").and_then(Value::as_str),
        Some("mine_result"),
        "slot not released after cancellation: {}",
        reply.encode()
    );
    let stats = server.service().stats();
    assert_eq!(stats.cancelled, 1);
    assert_eq!(stats.completed, 1);
    server.shutdown();
}

#[test]
fn tenant_quota_cannot_starve_other_tenants() {
    let server = Server::bind(ServerConfig {
        handler_threads: 4,
        service: temporal_mining::serve::ServiceConfig {
            workers: 2,
            max_in_flight: 4,
            ..Default::default()
        },
        tenants: vec![
            TenantConfig::new("acme", "key-a").quota(1),
            TenantConfig::new("beta", "key-b"),
        ],
        executor_factory: Some(Arc::new(|| {
            Box::new(SlowSpy {
                delay: Duration::from_millis(150),
                executes: Arc::new(AtomicUsize::new(0)),
            })
        })),
        ..Default::default()
    })
    .unwrap();
    let addr = server.addr();

    let slow_db = markov_letters(6_000, 13, 0.6);
    let quick_db = markov_letters(2_000, 17, 0.6);
    std::thread::scope(|s| {
        // acme's blocker occupies its whole quota for ~4 × 150ms.
        let blocker = s.spawn(|| {
            let mut client = Client::connect(addr).unwrap();
            client
                .call(&mine_request(
                    "acme",
                    "key-a",
                    &letters(&slow_db),
                    0.01,
                    Some(4),
                    None,
                    None,
                    None,
                ))
                .unwrap()
        });
        let start = Instant::now();
        while server.tenant_in_flight() == 0 {
            assert!(
                start.elapsed() < Duration::from_secs(10),
                "blocker never admitted"
            );
            std::thread::yield_now();
        }

        // acme's second request is refused immediately with a typed quota
        // error carrying a retry hint…
        let mut acme = Client::connect(addr).unwrap();
        let denied = acme
            .call(&mine_request(
                "acme",
                "key-a",
                &letters(&quick_db),
                0.05,
                Some(1),
                None,
                None,
                None,
            ))
            .unwrap();
        assert_eq!(denied.get("code").and_then(Value::as_str), Some("quota"));
        assert_eq!(denied.get("in_flight").and_then(Value::as_u64), Some(1));
        assert_eq!(denied.get("quota").and_then(Value::as_u64), Some(1));
        assert!(
            denied
                .get("retry_after_ms")
                .and_then(Value::as_u64)
                .unwrap()
                > 0
        );

        // …while beta mines happily during acme's saturation.
        let mut beta = Client::connect(addr).unwrap();
        let served = beta
            .call(&mine_request(
                "beta",
                "key-b",
                &letters(&quick_db),
                0.05,
                Some(1),
                None,
                None,
                None,
            ))
            .unwrap();
        assert_eq!(
            served.get("type").and_then(Value::as_str),
            Some("mine_result"),
            "beta starved by acme's quota: {}",
            served.encode()
        );

        assert_eq!(
            blocker.join().unwrap().get("type").and_then(Value::as_str),
            Some("mine_result")
        );
    });

    // Quota slots drain back to idle once the blocker finishes.
    assert_eq!(server.tenant_in_flight(), 0);
    server.shutdown();
}
