//! Property tests of the database-sharded counting engine: for arbitrary
//! databases, distinct-item episodes (the paper's candidate universe), and
//! worker counts 1..=8 — with boundary positions varied both by worker count
//! and adversarially — the sharded count is bit-identical to the
//! one-FSM-per-episode reference.

use proptest::prelude::*;
use temporal_mining::core::count::count_episodes_naive;
use temporal_mining::core::engine::{CompiledCandidates, CountScratch};
use temporal_mining::core::{Alphabet, Episode, EventDb};

/// Builds a distinct-item episode from a seed by keeping each symbol's first
/// occurrence (order preserved, so the space is richer than sorted prefixes).
fn distinct_episode(seed: &[u8]) -> Episode {
    let mut seen = [false; 256];
    let mut items = Vec::new();
    for &s in seed {
        if !seen[s as usize] {
            seen[s as usize] = true;
            items.push(s);
        }
    }
    Episode::new(items).expect("seed is non-empty")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Worker counts 1..=8 over streams long enough to actually shard: the
    /// parallel map → continuation fix → reduce pipeline equals the naive
    /// reference for distinct-item episode sets.
    #[test]
    fn sharded_equals_naive_for_distinct_episodes(
        data in proptest::collection::vec(0u8..6, 4096..4800),
        seeds in proptest::collection::vec(
            proptest::collection::vec(0u8..6, 1..5), 1..12),
    ) {
        let ab = Alphabet::numbered(6).unwrap();
        let db = EventDb::new(ab, data).unwrap();
        let episodes: Vec<Episode> = seeds.iter().map(|s| distinct_episode(s)).collect();
        prop_assert!(episodes.iter().all(|e| e.has_distinct_items()));
        let compiled = CompiledCandidates::compile(6, &episodes);
        let expected = count_episodes_naive(&db, &episodes);
        for workers in 1usize..=8 {
            prop_assert_eq!(
                &compiled.count_sharded(db.symbols(), workers),
                &expected,
                "workers={}", workers
            );
        }
    }

    /// Adversarial boundary positions (arbitrary cuts, including clustered and
    /// empty segments) preserve counts — same merge machinery the parallel
    /// path uses, without the even-partition restriction.
    #[test]
    fn varied_boundaries_preserve_counts(
        data in proptest::collection::vec(0u8..5, 0..500),
        seeds in proptest::collection::vec(
            proptest::collection::vec(0u8..5, 1..5), 1..10),
        cuts in proptest::collection::vec(0usize..500, 0..12),
    ) {
        let ab = Alphabet::numbered(5).unwrap();
        let n = data.len();
        let db = EventDb::new(ab, data).unwrap();
        let episodes: Vec<Episode> = seeds.iter().map(|s| distinct_episode(s)).collect();
        let compiled = CompiledCandidates::compile(5, &episodes);
        let mut bounds: Vec<usize> = cuts.into_iter().map(|c| c % (n + 1)).collect();
        bounds.sort_unstable();
        let mut scratch = CountScratch::new();
        prop_assert_eq!(
            compiled.count_with_bounds(db.symbols(), &bounds, &mut scratch),
            count_episodes_naive(&db, &episodes),
            "bounds={:?}", bounds
        );
    }

    /// Repeated-item episodes ride along exactly (state-composition fallback):
    /// the engine's sharded result stays bit-identical to naive for ARBITRARY
    /// episode sets.
    #[test]
    fn sharded_exact_for_repeated_item_episodes(
        data in proptest::collection::vec(0u8..4, 4096..4500),
        eps in proptest::collection::vec(
            proptest::collection::vec(0u8..4, 1..5), 1..8),
    ) {
        let ab = Alphabet::numbered(4).unwrap();
        let db = EventDb::new(ab, data).unwrap();
        let episodes: Vec<Episode> =
            eps.into_iter().map(|v| Episode::new(v).unwrap()).collect();
        let compiled = CompiledCandidates::compile(4, &episodes);
        let expected = count_episodes_naive(&db, &episodes);
        for workers in [2usize, 5, 8] {
            prop_assert_eq!(
                &compiled.count_sharded(db.symbols(), workers),
                &expected,
                "workers={}", workers
            );
        }
    }
}
