//! Offline stand-in for `criterion`.
//!
//! Provides the group/`bench_function` API surface the workspace's benches
//! use, with a simple best-of-N wall-clock measurement printed per benchmark.
//! No statistics, plots, or baselines — enough for `cargo bench` to run and
//! report, and for `cargo test` to type-check the bench targets.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Top-level harness handle passed to every benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 20,
            throughput: None,
        }
    }
}

/// A named benchmark identifier (`BenchmarkId::from_parameter(...)`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id made of the parameter alone (group name supplies the context).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Units processed per iteration, for derived rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Abstract elements processed per iteration.
    Elements(u64),
}

/// A group of benchmarks sharing a name, sample size, and throughput.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares the work performed per iteration.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark and prints its best observed time.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: self.sample_size,
            best_ns: f64::INFINITY,
        };
        f(&mut bencher);
        let ns = bencher.best_ns;
        let rate = match self.throughput {
            Some(Throughput::Bytes(b)) if ns.is_finite() && ns > 0.0 => {
                format!("  ({:.1} MiB/s)", b as f64 / (ns / 1e9) / (1 << 20) as f64)
            }
            Some(Throughput::Elements(e)) if ns.is_finite() && ns > 0.0 => {
                format!("  ({:.3} Melem/s)", e as f64 / (ns / 1e9) / 1e6)
            }
            _ => String::new(),
        };
        println!("{}/{}: best {:.3} µs{}", self.name, id.id, ns / 1e3, rate);
        self
    }

    /// Like [`Self::bench_function`], with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (reporting already happened per benchmark).
    pub fn finish(self) {}
}

/// Timing driver handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    best_ns: f64,
}

impl Bencher {
    /// Measures `f`, keeping the best (minimum) time across samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warm-up run.
        black_box(f());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            let ns = start.elapsed().as_nanos() as f64;
            if ns < self.best_ns {
                self.best_ns = ns;
            }
        }
    }
}

/// Bundles benchmark functions into one runner function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Emits `main` for a bench binary built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_api_round_trip() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(2);
        g.throughput(Throughput::Bytes(1024));
        g.bench_function(BenchmarkId::from_parameter("noop"), |b| {
            b.iter(|| black_box(1 + 1))
        });
        g.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
    }
}
