//! Offline stand-in for `serde_derive`.
//!
//! The real derives generate `Serialize`/`Deserialize` impls; the workspace
//! only ever uses the derive *attributes* (never the traits as bounds), so
//! these no-op derives keep every `#[derive(Serialize, Deserialize)]` in the
//! tree compiling without pulling `syn`/`quote` from the network.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
