//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace uses: the [`proptest!`] macro (with an
//! optional `#![proptest_config(...)]` header), range strategies over the
//! primitive integers and floats, [`collection::vec`], [`sample::select`], and
//! the `prop_assert*` family. Cases are generated from a deterministic
//! per-test seed, so failures reproduce across runs; there is no shrinking —
//! a failing case panics with the values visible in the assertion message.

#![forbid(unsafe_code)]

/// Value-generation strategies (the shim's core trait lives here).
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::{RngExt, SampleRange};

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value from `rng`.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    self.clone().sample_from(rng.inner())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    self.clone().sample_from(rng.inner())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.clone().sample_from(rng.inner())
        }
    }

    impl Strategy for bool {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            // `bool` as a strategy means "any bool" (mirrors `any::<bool>()`).
            let _ = self;
            rng.inner().random_bool(0.5)
        }
    }
}

/// Strategies over collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngExt;

    /// A length range for [`vec()`]: `lo..hi` (half-open) or an exact size.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy producing `Vec<S::Value>` with a length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element` and whose length
    /// is uniform in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.inner().random_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Strategies that pick from explicit value sets.
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngExt;

    /// Strategy returned by [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        choices: Vec<T>,
    }

    /// Picks uniformly from a non-empty list of options.
    pub fn select<T: Clone>(choices: Vec<T>) -> Select<T> {
        assert!(!choices.is_empty(), "select requires at least one option");
        Select { choices }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.inner().random_range(0..self.choices.len());
            self.choices[i].clone()
        }
    }
}

/// Test-runner configuration and the deterministic case RNG.
pub mod test_runner {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Run configuration (only `cases` is honored by the shim).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to execute per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config that runs `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Deterministic per-test RNG: the stream depends only on the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        rng: SmallRng,
    }

    impl TestRng {
        /// Seeds the RNG from the property's name (FNV-1a).
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                rng: SmallRng::seed_from_u64(h),
            }
        }

        /// Access to the raw RNG for strategies.
        pub fn inner(&mut self) -> &mut SmallRng {
            &mut self.rng
        }
    }
}

/// The common imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespaced access to strategy modules (`prop::sample::select`, ...).
    pub mod prop {
        pub use crate::{collection, sample};
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for __case in 0..config.cases {
                    let _ = __case;
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )+
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property (panics with the case's values).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            continue;
        }
    };
}
