//! Offline stand-in for the `rand` crate.
//!
//! Implements exactly the surface the workspace uses: a seedable small RNG
//! ([`rngs::SmallRng`], xoshiro256++), plus `random`, `random_range`, and
//! `random_bool` via [`RngExt`]. Deterministic for a given seed, which is all
//! the workload generators require.

#![forbid(unsafe_code)]

/// Sources of raw random 64-bit words.
pub trait RngCore {
    /// Produces the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding support, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds an RNG whose entire stream is determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, mirroring the `rand::Rng` extension surface.
pub trait RngExt: RngCore + Sized {
    /// Samples a value of `T` from its standard distribution
    /// (uniform `[0, 1)` for floats, full-range uniform for integers).
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a half-open or inclusive range.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore> RngExt for R {}

/// Types samplable by [`RngExt::random`].
pub trait StandardSample {
    /// Draws one standard-distribution value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Integers with uniform range sampling (via unbiased rejection on `u128`).
pub trait UniformInt: Copy {
    /// Widens to `i128` for span arithmetic.
    fn to_i128(self) -> i128;
    /// Narrows back after offsetting; the value is guaranteed in range.
    fn from_i128(v: i128) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn to_i128(self) -> i128 {
                self as i128
            }
            fn from_i128(v: i128) -> Self {
                v as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

fn sample_span<R: RngCore>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    // A span of 2^64 (e.g. `0..=u64::MAX`) covers every u64: no rejection
    // needed, and `span as u64` below would truncate it to 0.
    if span == 1u128 << 64 {
        return rng.next_u64() as u128;
    }
    // Unbiased rejection over 64-bit draws; sampled integer types are at most
    // 64 bits wide, so spans always fit in u64 after the check above.
    let span64 = span as u64;
    let zone = u64::MAX - (u64::MAX - span64 + 1) % span64;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return (v % span64) as u128;
        }
    }
}

impl<T: UniformInt> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start.to_i128(), self.end.to_i128());
        assert!(lo < hi, "cannot sample from empty range");
        T::from_i128(lo + sample_span(rng, (hi - lo) as u128) as i128)
    }
}

impl<T: UniformInt> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start().to_i128(), self.end().to_i128());
        assert!(lo <= hi, "cannot sample from empty range");
        T::from_i128(lo + sample_span(rng, (hi - lo + 1) as u128) as i128)
    }
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u = f32::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, seedable RNG: xoshiro256++ seeded through splitmix64
    /// (the reference construction from Blackman & Vigna).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.random_range(0..26u32);
            assert!(x < 26);
            let y = rng.random_range(1..=6u64);
            assert!((1..=6).contains(&y));
            let f = rng.random_range(-2.0..2.0f64);
            assert!((-2.0..2.0).contains(&f));
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn bool_probability_extremes() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.1)));
    }

    #[test]
    fn full_width_inclusive_range_works() {
        let mut rng = SmallRng::seed_from_u64(4);
        // Spans of exactly 2^64 must not truncate to a zero divisor.
        let mut any_high = false;
        for _ in 0..100 {
            let v = rng.random_range(0..=u64::MAX);
            any_high |= v > u64::MAX / 2;
        }
        assert!(any_high);
        let s = rng.random_range(i64::MIN..=i64::MAX);
        let _ = s;
    }

    #[test]
    fn small_ranges_cover_all_values() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.random_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
