//! Offline stand-in for `serde`.
//!
//! Provides the two trait names and re-exports the no-op derive macros from
//! the sibling `serde_derive` shim. The workspace uses serde only through
//! `#[derive(Serialize, Deserialize)]` attributes and `use serde::{...}`
//! imports — never as trait bounds — so empty traits and empty derives are a
//! faithful substitute until the real crates can be vendored.

#![forbid(unsafe_code)]

use std::sync::Arc;

pub use serde_derive::{Deserialize, Serialize};

/// Stand-in for `serde::Serialize` (the trait namespace half of the name).
pub trait Serialize {}

/// Stand-in for `serde::Deserialize` (the trait namespace half of the name).
pub trait Deserialize<'de>: Sized {}

// Shared-byte-buffer fields (`Arc<[u8]>`) appear in types that derive the
// serde traits, so the shim carries the impls the real crate would provide
// via its `rc` feature. Kept explicit (not a blanket impl) to match real
// serde's opt-in surface.
impl Serialize for Arc<[u8]> {}

impl<'de> Deserialize<'de> for Arc<[u8]> {}
