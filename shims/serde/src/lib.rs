//! Offline stand-in for `serde`.
//!
//! Provides the two trait names and re-exports the no-op derive macros from
//! the sibling `serde_derive` shim. The workspace uses serde only through
//! `#[derive(Serialize, Deserialize)]` attributes and `use serde::{...}`
//! imports — never as trait bounds — so empty traits and empty derives are a
//! faithful substitute until the real crates can be vendored.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Stand-in for `serde::Serialize` (the trait namespace half of the name).
pub trait Serialize {}

/// Stand-in for `serde::Deserialize` (the trait namespace half of the name).
pub trait Deserialize<'de>: Sized {}
